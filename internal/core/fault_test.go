package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"chassis/internal/checkpoint"
	"chassis/internal/faultinject"
	"chassis/internal/guard"
	"chassis/internal/obs"
	"chassis/internal/timeline"
)

// ckptCfg is quickCfg plus checkpointing into dir (stride 1 by default).
func ckptCfg(v Variant, dir string) Config {
	cfg := quickCfg(v)
	cfg.TrackHistory = true
	cfg.CheckpointDir = dir
	cfg.CheckpointEvery = 1
	return cfg
}

// fitExpectingCrash installs a simulated kill after EM iteration crashAt,
// runs the fit, and asserts it died with the injected-crash sentinel.
func fitExpectingCrash(t *testing.T, cfg Config, seq *timeline.Sequence, crashAt int) {
	t.Helper()
	faultinject.CrashAfterIter = func(iter int) bool { return iter == crashAt }
	defer faultinject.Reset()
	if _, err := Fit(seq, cfg); !errors.Is(err, faultinject.ErrInjectedCrash) {
		t.Fatalf("crash-at-%d fit: got %v, want ErrInjectedCrash", crashAt, err)
	}
}

// TestCrashResumeBitIdentical is the headline recovery contract: kill the
// fit after iteration k, resume from the checkpoint, and the final model —
// parameters, forest, LL history — is bit-identical to a never-interrupted
// fit, at Workers=1 and Workers=8 and even when the resumed run uses a
// different worker count than the killed one.
func TestCrashResumeBitIdentical(t *testing.T) {
	forceSmallChunks(t, 48)
	d := smallDataset(t, 77)

	baselineCfg := quickCfg(VariantL)
	baselineCfg.TrackHistory = true
	baseline, err := Fit(d.Seq, baselineCfg)
	if err != nil {
		t.Fatal(err)
	}
	want := summarize(baseline)

	cases := []struct {
		name                        string
		crashAt                     int
		crashWorkers, resumeWorkers int
	}{
		{"workers1", 2, 1, 1},
		{"workers8", 2, 8, 8},
		{"crash1-resume8", 1, 1, 8},
		{"crash8-resume1", 3, 8, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			dir := t.TempDir()
			cfg := ckptCfg(VariantL, dir)
			cfg.Workers = c.crashWorkers
			fitExpectingCrash(t, cfg, d.Seq, c.crashAt)

			env, err := checkpoint.Load(CheckpointPath(dir), "chassis-em")
			if err != nil {
				t.Fatalf("no checkpoint after crash: %v", err)
			}
			if env.Iteration != c.crashAt {
				t.Fatalf("checkpoint holds iteration %d, want %d", env.Iteration, c.crashAt)
			}

			cfg.Workers = c.resumeWorkers
			cfg.Resume = true
			m, err := Fit(d.Seq, cfg)
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			assertSummariesIdentical(t, want, summarize(m))
		})
	}
}

// TestCrashResumeWithStride kills the fit between checkpoint strides: with
// CheckpointEvery=2 and a crash after iteration 3, only iteration 2 is on
// disk (a simulated SIGKILL flushes nothing), so the resume recomputes
// iterations 3 and 4 — and still lands bit-identically.
func TestCrashResumeWithStride(t *testing.T) {
	forceSmallChunks(t, 48)
	d := smallDataset(t, 81)
	baseCfg := quickCfg(VariantL)
	baseCfg.TrackHistory = true
	baseline, err := Fit(d.Seq, baseCfg)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	cfg := ckptCfg(VariantL, dir)
	cfg.CheckpointEvery = 2
	fitExpectingCrash(t, cfg, d.Seq, 3)

	env, err := checkpoint.Load(CheckpointPath(dir), "chassis-em")
	if err != nil {
		t.Fatal(err)
	}
	if env.Iteration != 2 {
		t.Fatalf("stride-2 checkpoint holds iteration %d, want 2 (iteration 3 must not survive a kill)", env.Iteration)
	}

	cfg.Resume = true
	m, err := Fit(d.Seq, cfg)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	assertSummariesIdentical(t, summarize(baseline), summarize(m))
}

// TestCheckpointedFitMatchesPlain: writing checkpoints is observationally
// pure — a checkpointed, uninterrupted fit equals a plain one bit-for-bit,
// and the completion checkpoint records the final iteration.
func TestCheckpointedFitMatchesPlain(t *testing.T) {
	forceSmallChunks(t, 48)
	d := smallDataset(t, 77)
	plainCfg := quickCfg(VariantL)
	plainCfg.TrackHistory = true
	plain, err := Fit(d.Seq, plainCfg)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	cfg := ckptCfg(VariantL, dir)
	ck, err := Fit(d.Seq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertSummariesIdentical(t, summarize(plain), summarize(ck))

	env, err := checkpoint.Load(CheckpointPath(dir), "chassis-em")
	if err != nil {
		t.Fatal(err)
	}
	if env.Iteration != cfg.EMIters {
		t.Errorf("completion checkpoint holds iteration %d, want %d", env.Iteration, cfg.EMIters)
	}

	// Resuming a finished run replays only the final readout — same model.
	cfg.Resume = true
	again, err := Fit(d.Seq, cfg)
	if err != nil {
		t.Fatalf("resume of completed run: %v", err)
	}
	assertSummariesIdentical(t, summarize(plain), summarize(again))
}

// TestCancellationFlushesCheckpoint is the SIGTERM path: cooperative
// cancellation mid-run flushes the last completed iteration even when the
// stride would not have written it, and the resume completes bit-identically.
func TestCancellationFlushesCheckpoint(t *testing.T) {
	forceSmallChunks(t, 48)
	d := smallDataset(t, 77)
	baseCfg := quickCfg(VariantL)
	baseCfg.TrackHistory = true
	baseline, err := Fit(d.Seq, baseCfg)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	cfg := ckptCfg(VariantL, dir)
	cfg.CheckpointEvery = 100 // stride never fires: only the flush-on-exit can write
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	obsv := &cancelAfterIter{at: 2, cancel: cancel}
	_, err = FitContext(ctx, d.Seq, cfg, WithObserver(obsv))
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("cancelled fit: got %v, want *CanceledError", err)
	}

	env, err := checkpoint.Load(CheckpointPath(dir), "chassis-em")
	if err != nil {
		t.Fatalf("cancellation did not flush a checkpoint: %v", err)
	}
	if env.Iteration != 2 {
		t.Fatalf("flushed checkpoint holds iteration %d, want 2", env.Iteration)
	}

	cfg.Resume = true
	m, err := Fit(d.Seq, cfg)
	if err != nil {
		t.Fatalf("resume after cancellation: %v", err)
	}
	assertSummariesIdentical(t, summarize(baseline), summarize(m))
}

// cancelAfterIter cancels the fit's context once iteration `at` completes.
type cancelAfterIter struct {
	obs.CollectObserver
	at     int
	cancel context.CancelFunc
}

func (c *cancelAfterIter) OnIterEnd(s obs.IterStats) {
	c.CollectObserver.OnIterEnd(s)
	if s.Iter == c.at {
		c.cancel()
	}
}

// TestCheckpointIOFailureLeavesPreviousLoadable: an injected I/O failure on
// a later checkpoint write aborts the fit but leaves the earlier checkpoint
// intact, and resuming from it still reproduces the uninterrupted result.
func TestCheckpointIOFailureLeavesPreviousLoadable(t *testing.T) {
	forceSmallChunks(t, 48)
	d := smallDataset(t, 77)
	baseCfg := quickCfg(VariantL)
	baseCfg.TrackHistory = true
	baseline, err := Fit(d.Seq, baseCfg)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	cfg := ckptCfg(VariantL, dir)
	writes := 0
	faultinject.CheckpointIO = func(stage, path string) error {
		if stage != "rename" {
			return nil
		}
		writes++ // checkpoint writes are sequential on the EM goroutine
		if writes >= 2 {
			return errors.New("injected rename failure")
		}
		return nil
	}
	_, err = Fit(d.Seq, cfg)
	faultinject.Reset()
	if err == nil || errors.Is(err, faultinject.ErrInjectedCrash) {
		t.Fatalf("fit with failing checkpoint writes: got %v, want an I/O error", err)
	}

	env, err := checkpoint.Load(CheckpointPath(dir), "chassis-em")
	if err != nil {
		t.Fatalf("previous checkpoint unreadable after failed write: %v", err)
	}
	if env.Iteration != 1 {
		t.Fatalf("surviving checkpoint holds iteration %d, want 1", env.Iteration)
	}

	cfg.Resume = true
	m, err := Fit(d.Seq, cfg)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	assertSummariesIdentical(t, summarize(baseline), summarize(m))
}

// TestResumeMismatches: a checkpoint is never resumed against different
// training data or a different configuration — both are typed
// *checkpoint.MismatchError failures before any EM work.
func TestResumeMismatches(t *testing.T) {
	forceSmallChunks(t, 48)
	d := smallDataset(t, 77)
	dir := t.TempDir()
	cfg := ckptCfg(VariantL, dir)
	fitExpectingCrash(t, cfg, d.Seq, 2)

	t.Run("data", func(t *testing.T) {
		other := smallDataset(t, 78)
		rcfg := cfg
		rcfg.Resume = true
		_, err := Fit(other.Seq, rcfg)
		var me *checkpoint.MismatchError
		if !errors.As(err, &me) || me.Field != "data" {
			t.Fatalf("resume with different data: got %v, want MismatchError{data}", err)
		}
	})
	t.Run("config", func(t *testing.T) {
		rcfg := cfg
		rcfg.Resume = true
		rcfg.EMIters = cfg.EMIters + 3
		_, err := Fit(d.Seq, rcfg)
		var me *checkpoint.MismatchError
		if !errors.As(err, &me) || me.Field != "config" {
			t.Fatalf("resume with different config: got %v, want MismatchError{config}", err)
		}
	})
	t.Run("workers-change-allowed", func(t *testing.T) {
		rcfg := cfg
		rcfg.Resume = true
		rcfg.Workers = 8
		if _, err := Fit(d.Seq, rcfg); err != nil {
			t.Fatalf("resume at a different worker count must be allowed: %v", err)
		}
	})
}

func TestResumeRequiresCheckpointDir(t *testing.T) {
	d := smallDataset(t, 77)
	cfg := quickCfg(VariantL)
	cfg.Resume = true
	if _, err := Fit(d.Seq, cfg); err == nil {
		t.Fatal("Resume without CheckpointDir must fail fast")
	}
}

// TestResumeWithoutCheckpointIsFreshStart: -resume against an empty
// directory is a fresh start (so deployments can pass it unconditionally),
// and still matches the plain fit bit-for-bit.
func TestResumeWithoutCheckpointIsFreshStart(t *testing.T) {
	forceSmallChunks(t, 48)
	d := smallDataset(t, 77)
	plainCfg := quickCfg(VariantL)
	plainCfg.TrackHistory = true
	plain, err := Fit(d.Seq, plainCfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ckptCfg(VariantL, t.TempDir())
	cfg.Resume = true
	m, err := Fit(d.Seq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertSummariesIdentical(t, summarize(plain), summarize(m))
}

// TestNaNInjectionRecovers: a NaN planted in one dimension's accepted
// M-step parameters trips the guard, which rolls the iteration back,
// shrinks the step, retries — and the fit still converges to a fully
// finite model, with the recovery visible through the observer and the
// metrics counters.
func TestNaNInjectionRecovers(t *testing.T) {
	forceSmallChunks(t, 48)
	d := smallDataset(t, 77)
	cfg := quickCfg(VariantL)
	cfg.TrackHistory = true
	cfg.Guard = guard.Policy{Enabled: true}

	faultinject.MStepResult = func(iter, attempt, dim int, x, grad []float64) {
		if iter == 2 && attempt == 0 && dim == 3 {
			x[0] = math.NaN()
		}
	}
	defer faultinject.Reset()

	col := &obs.CollectObserver{}
	metrics := obs.NewMetrics()
	m, err := FitContext(nil, d.Seq, cfg, WithObserver(col), WithMetrics(metrics))
	if err != nil {
		t.Fatalf("guarded fit with one-shot NaN: %v", err)
	}
	if len(col.Recoveries) == 0 {
		t.Fatal("no recovery surfaced through the observer")
	}
	r := col.Recoveries[0]
	if r.Iter != 2 || r.Phase != "mstep" || r.Quantity != "mu" {
		t.Errorf("recovery = %+v, want iter 2, phase mstep, quantity mu", r)
	}
	if r.StepScale >= 1 {
		t.Errorf("recovery did not shrink the step: scale %v", r.StepScale)
	}
	if n := metrics.Counter("guard.recoveries").Value(); n < 1 {
		t.Errorf("guard.recoveries = %d, want >= 1", n)
	}
	if n := metrics.Counter("guard.violations").Value(); n < 1 {
		t.Errorf("guard.violations = %d, want >= 1", n)
	}
	if phase, v := m.checkParamsFinite(); v != nil {
		t.Errorf("recovered model holds non-finite parameters (%s: %v)", phase, v)
	}
}

// TestExplodingGradientRecovers covers the guard's threshold check: a
// planted huge-but-finite gradient trips the grad_norm limit and recovers.
func TestExplodingGradientRecovers(t *testing.T) {
	forceSmallChunks(t, 48)
	d := smallDataset(t, 77)
	cfg := quickCfg(VariantL)
	cfg.Guard = guard.Policy{Enabled: true}

	faultinject.MStepResult = func(iter, attempt, dim int, x, grad []float64) {
		if iter == 2 && attempt == 0 && dim == 0 && grad != nil {
			for p := range grad {
				grad[p] = 1e12
			}
		}
	}
	defer faultinject.Reset()

	col := &obs.CollectObserver{}
	if _, err := FitContext(nil, d.Seq, cfg, WithObserver(col)); err != nil {
		t.Fatalf("guarded fit with one-shot gradient explosion: %v", err)
	}
	if len(col.Recoveries) == 0 {
		t.Fatal("no recovery surfaced")
	}
	if q := col.Recoveries[0].Quantity; q != "grad_norm" {
		t.Errorf("recovery quantity = %q, want grad_norm", q)
	}
}

// TestPersistentNaNFailsTyped: when every retry keeps producing NaN, the
// fit gives up after MaxRecoveries with a structured *guard.NumericalError
// and returns no model — non-finite Θ never reaches the caller.
func TestPersistentNaNFailsTyped(t *testing.T) {
	forceSmallChunks(t, 48)
	d := smallDataset(t, 77)
	cfg := quickCfg(VariantL)
	cfg.Guard = guard.Policy{Enabled: true, MaxRecoveries: 2}

	faultinject.MStepResult = func(iter, attempt, dim int, x, grad []float64) {
		if iter == 2 && dim == 3 {
			x[0] = math.NaN()
		}
	}
	defer faultinject.Reset()

	m, err := Fit(d.Seq, cfg)
	if m != nil {
		t.Fatal("failed fit must not return a model")
	}
	var ne *guard.NumericalError
	if !errors.As(err, &ne) {
		t.Fatalf("got %v, want *guard.NumericalError", err)
	}
	if ne.Iteration != 2 || ne.Phase != "mstep" || ne.Quantity != "mu" {
		t.Errorf("NumericalError = %+v, want iteration 2, phase mstep, quantity mu", ne)
	}
	if ne.Recoveries != 2 {
		t.Errorf("Recoveries = %d, want the exhausted budget 2", ne.Recoveries)
	}
}

// TestGuardedCleanFitBitIdentical: on healthy data the guard never fires,
// and because its health checks are pure reads, the guarded fit is
// bit-identical to the unguarded one.
func TestGuardedCleanFitBitIdentical(t *testing.T) {
	forceSmallChunks(t, 48)
	d := smallDataset(t, 77)
	plainCfg := quickCfg(VariantL)
	plainCfg.TrackHistory = true
	plain, err := Fit(d.Seq, plainCfg)
	if err != nil {
		t.Fatal(err)
	}
	guardedCfg := plainCfg
	guardedCfg.Guard = guard.Policy{Enabled: true}
	guarded, err := Fit(d.Seq, guardedCfg)
	if err != nil {
		t.Fatal(err)
	}
	assertSummariesIdentical(t, summarize(plain), summarize(guarded))
}
