package core

import (
	"testing"

	"chassis/internal/hawkes"
	"chassis/internal/kernel"
	"chassis/internal/rng"
	"chassis/internal/timeline"
)

// TestUpdateKernelsRecoversDecayShape drives the frequency-domain estimator
// (Eqs. 7.5–7.8) directly: simulate a 2-dim Hawkes stream with a known
// fast-decay kernel, hand the model the true excitation weights, and check
// the re-estimated kernel concentrates its mass early like the truth.
func TestUpdateKernelsRecoversDecayShape(t *testing.T) {
	trueKer, err := kernel.NewExponential(1.5)
	if err != nil {
		t.Fatal(err)
	}
	exc, err := hawkes.NewConstExcitation([][]float64{{0.3, 0.4}, {0.4, 0.3}})
	if err != nil {
		t.Fatal(err)
	}
	proc := &hawkes.Process{
		M: 2, Mu: []float64{0.15, 0.15}, Exc: exc,
		Kernels: hawkes.SharedKernel{K: trueKer}, Link: hawkes.LinearLink{},
	}
	seq, err := proc.Simulate(rng.New(9), hawkes.SimOptions{Horizon: 1200})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Len() < 200 {
		t.Fatalf("too few events for estimation: %d", seq.Len())
	}

	cfg := quickCfg(VariantLHP)
	if err := cfg.fill(); err != nil {
		t.Fatal(err)
	}
	cfg.KernelSupport = 8
	cfg.KernelDamping = 0 // pure estimate, no blending with the init
	link, _ := cfg.Variant.Link()
	m := &Model{
		M: 2, Variant: cfg.Variant, Horizon: seq.Horizon,
		Mu:     []float64{0.15, 0.15},
		GammaI: dense(2), GammaN: dense(2), Beta: dense(2),
		Alpha:   [][]float64{{0.3, 0.4}, {0.4, 0.3}},
		Kernels: make([]kernel.Kernel, 2),
		cfg:     cfg, link: link, seq: seq,
	}
	// Deliberately bad starting kernel: uniform over the support.
	flat := make([]float64, 25)
	for i := range flat {
		flat[i] = 1
	}
	fk, err := kernel.NewDiscrete(cfg.KernelSupport/24, flat)
	if err != nil {
		t.Fatal(err)
	}
	fk.Normalize()
	m.Kernels[0], m.Kernels[1] = fk, fk

	m.updateKernels(nil, seq, nil)

	for i := 0; i < 2; i++ {
		est, ok := m.Kernels[i].(*kernel.Discrete)
		if !ok {
			t.Fatalf("kernel %d not re-estimated", i)
		}
		// The true kernel has ~95% of its mass before t=2 (rate 1.5); a
		// uniform kernel over support 8 has 25%. The (noisy, regularized)
		// spectral estimate must have moved decisively toward front-loaded.
		head := est.Integral(2) / est.Mass()
		if head < 0.4 {
			t.Errorf("dim %d: estimated head mass %.2f, want front-loaded (> 0.4)", i, head)
		}
	}
}

// TestUpdateKernelsDegenerateInputsAreSafe exercises the guard paths: too
// few events and zero excitation must leave kernels untouched.
func TestUpdateKernelsDegenerateInputsAreSafe(t *testing.T) {
	cfg := quickCfg(VariantLHP)
	if err := cfg.fill(); err != nil {
		t.Fatal(err)
	}
	cfg.KernelSupport = 5
	link, _ := cfg.Variant.Link()
	seq := &timeline.Sequence{M: 1, Horizon: 100}
	seq.Activities = []timeline.Activity{
		{ID: 0, Time: 1, Parent: timeline.NoParent},
		{ID: 1, Time: 2, Parent: timeline.NoParent},
	}
	init, _ := kernel.NewExponential(1)
	sampled, _ := kernel.Sample(init, 0.2, 26)
	m := &Model{
		M: 1, Variant: cfg.Variant, Horizon: 100,
		Mu:     []float64{0.02},
		GammaI: dense(1), GammaN: dense(1), Beta: dense(1), Alpha: dense(1),
		Kernels: []kernel.Kernel{sampled},
		cfg:     cfg, link: link, seq: seq,
	}
	before := m.Kernels[0]
	m.updateKernels(nil, seq, nil) // 2 events: below the signal threshold
	if m.Kernels[0] != before {
		t.Error("kernel must be untouched with too few events")
	}
}
