package core

// Temporary experiment hooks (unexported; zero values are no-ops).
var (
	testRefreshEvery int
	testCoefCap      float64
)
