package core

import (
	"testing"

	"chassis/internal/cascade"
)

// TestConformityAwareGeneralizes pins the paper's headline effect at unit
// scale: on a corpus whose diffusion is genuinely conformity-driven,
// CHASSIS-L achieves a higher held-out log-likelihood than the
// conformity-unaware L-HP fitted with the same machinery (Figure 5's
// ordering), even though the more flexible HP wins on training likelihood.
func TestConformityAwareGeneralizes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second EM fit")
	}
	d, err := cascade.Generate(cascade.Config{
		Name: "gen", M: 40, Horizon: 1500, Seed: 3,
		Graph: cascade.BarabasiAlbert, GraphDegree: 3, Reciprocity: 0.5,
		Topics: 2, BaseRateLo: 0.008, BaseRateHi: 0.02,
		KernelRate: 0.8, KernelKind: "rayleigh", TargetBranching: 0.6,
		ConformityWeight: 0.75, PolarityNoise: 0.15, LikeFraction: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := d.Seq.Split(0.7)
	if err != nil {
		t.Fatal(err)
	}
	fit := func(v Variant) float64 {
		cfg := quickCfg(v)
		cfg.EMIters = 8
		// The paper's model-fitness protocol: the platform exposes
		// connectivity, so conformity reads observed diffusion trees.
		cfg.UseObservedTrees = true
		m, err := Fit(train, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ll, err := m.HeldOutLogLikelihood(test)
		if err != nil {
			t.Fatal(err)
		}
		return ll
	}
	chassis := fit(VariantL)
	hp := fit(VariantLHP)
	if chassis <= hp {
		t.Errorf("CHASSIS-L test LL %.1f should beat L-HP %.1f on conformity-driven data", chassis, hp)
	}
}
