package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"

	"chassis/internal/branching"
	"chassis/internal/checkpoint"
	"chassis/internal/kernel"
	"chassis/internal/timeline"
)

// CheckpointFileName is the file FitContext writes inside
// Config.CheckpointDir. One directory holds one fit's checkpoint; the
// atomic-rename write keeps the previous snapshot intact until the new one
// is durable.
const CheckpointFileName = "chassis-em.ckpt"

// checkpointKind tags core's EM checkpoints inside the envelope so a model
// file (or another producer's checkpoint) is never misread as one.
const checkpointKind = "chassis-em"

// CheckpointPath returns the checkpoint file a fit with the given
// CheckpointDir reads and writes.
func CheckpointPath(dir string) string {
	return filepath.Join(dir, CheckpointFileName)
}

// fitState is the checkpoint payload: every piece of EM loop state whose
// restoration makes the resumed run bit-identical to an uninterrupted one.
// The RNG needs no raw state — every stream is derived from (Config.Seed,
// EStepCalls), so the counter alone pins all future draws.
type fitState struct {
	Mu         []float64   `json:"mu"`
	GammaI     [][]float64 `json:"gamma_i,omitempty"`
	GammaN     [][]float64 `json:"gamma_n,omitempty"`
	Beta       [][]float64 `json:"beta,omitempty"`
	Alpha      [][]float64 `json:"alpha,omitempty"`
	KernelStep []float64   `json:"kernel_step"`
	KernelVals [][]float64 `json:"kernel_values"`
	// KernelCum carries each discrete kernel's cumulative-integral table
	// verbatim. Normalize rescales that table in place, so recomputing it
	// from the (scaled) values on load would differ in the last ulp — and
	// break the resumed run's bit-identity with an uninterrupted one.
	KernelCum [][]float64 `json:"kernel_cum,omitempty"`
	// Parents is the current forest (the E-step's latest assignment).
	Parents []int     `json:"parents"`
	Sources [][]int   `json:"sources"`
	MuLo    []float64 `json:"mu_lo,omitempty"`
	MuHi    []float64 `json:"mu_hi,omitempty"`
	// EStepCalls pins the E-step RNG streams (Split(211+calls)).
	EStepCalls int       `json:"estep_calls"`
	History    []float64 `json:"history,omitempty"`
	// StepScale carries guard backoff across a resume.
	StepScale float64 `json:"step_scale"`
	// LastHealthyLL/HasHealthyLL carry the guard's LL-regression baseline.
	LastHealthyLL float64 `json:"last_healthy_ll"`
	HasHealthyLL  bool    `json:"has_healthy_ll"`
	// Config is the resolved configuration the run was started with
	// (Workers zeroed — resuming at a different parallelism is explicitly
	// supported); a resume under a different configuration is rejected.
	Config json.RawMessage `json:"config"`
}

// sequenceFingerprint hashes everything the fit reads from the training
// data (FNV-64a over dimensions, horizon, and each activity's fields), so a
// checkpoint is never resumed against different data.
func sequenceFingerprint(seq *timeline.Sequence) string {
	h := fnv.New64a()
	buf := make([]byte, 8)
	w64 := func(v uint64) {
		for b := 0; b < 8; b++ {
			buf[b] = byte(v >> (8 * b))
		}
		h.Write(buf)
	}
	w64(uint64(seq.M))
	w64(math.Float64bits(seq.Horizon))
	w64(uint64(len(seq.Activities)))
	for i := range seq.Activities {
		a := &seq.Activities[i]
		w64(uint64(a.User))
		w64(math.Float64bits(a.Time))
		w64(uint64(a.Kind))
		w64(math.Float64bits(a.Polarity))
		w64(uint64(int64(a.Parent)))
		w64(uint64(int64(a.Topic)))
	}
	return fmt.Sprintf("fnv64a:%016x", h.Sum64())
}

// configFingerprint serializes the resolved config for the compatibility
// check, neutralizing the fields a resume may legitimately change: Workers
// (bit-identity at any parallelism is the whole point) and the
// checkpointing knobs themselves (json:"-").
func configFingerprint(cfg Config) (json.RawMessage, error) {
	cfg.Workers = 0
	blob, err := json.Marshal(cfg)
	if err != nil {
		return nil, fmt.Errorf("core: fingerprinting config: %w", err)
	}
	return blob, nil
}

// checkpointer owns a fit's checkpoint file: it captures the loop state
// after completed iterations and decides when the capture reaches disk.
// The last capture is kept serialized in memory so the loop's exit paths
// (cancellation, guard failure, injected crash, completion) can flush the
// most recent completed iteration even when it fell between strides.
type checkpointer struct {
	path     string
	every    int
	dataHash string
	cfgBlob  json.RawMessage

	pending   []byte // serialized envelope of the last capture
	lastIter  int    // iteration the pending capture holds
	flushedAt int    // iteration of the last on-disk write (-1: none yet)
}

// newCheckpointer builds the checkpoint writer for a fit over data
// identified by dataHash: the in-memory fit passes sequenceFingerprint, the
// sharded fit the colstore footer fingerprint. The two prefixes differ
// ("fnv64a:" vs "colstore:"), so a checkpoint is never resumed by the other
// driver — the fingerprints cover different byte representations of the
// data, and cross-resuming would bypass that guard.
func newCheckpointer(cfg Config, dataHash string) (*checkpointer, error) {
	cfgBlob, err := configFingerprint(cfg)
	if err != nil {
		return nil, err
	}
	return &checkpointer{
		path:      CheckpointPath(cfg.CheckpointDir),
		every:     cfg.CheckpointEvery,
		dataHash:  dataHash,
		cfgBlob:   cfgBlob,
		flushedAt: -1,
	}, nil
}

// capture serializes the loop state after iteration iter completed. It only
// stages the bytes; write/flush decide when they hit disk.
func (c *checkpointer) capture(m *Model, forest *branching.Forest, iter int, lastLL float64, hasLL bool) error {
	st := fitState{
		Mu:     append([]float64(nil), m.Mu...),
		GammaI: m.GammaI, GammaN: m.GammaN, Beta: m.Beta, Alpha: m.Alpha,
		Parents: parentInts(forest),
		Sources: m.sources,
		MuLo:    m.muLo, MuHi: m.muHi,
		EStepCalls:    m.estepCalls,
		History:       m.History,
		StepScale:     m.stepScale,
		LastHealthyLL: lastLL, HasHealthyLL: hasLL,
		Config: c.cfgBlob,
	}
	var err error
	st.KernelStep, st.KernelVals, err = tabulateKernels(m.Kernels)
	if err != nil {
		return err
	}
	st.KernelCum = make([][]float64, len(m.Kernels))
	for i, k := range m.Kernels {
		if d, ok := k.(*kernel.Discrete); ok {
			st.KernelCum[i] = d.CumTable()
		}
		// Non-discrete kernels were freshly tabulated by tabulateKernels;
		// their table is recomputable, so nil falls back to NewDiscrete.
	}
	payload, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("core: encoding checkpoint state: %w", err)
	}
	env := checkpoint.Envelope{
		Version: checkpoint.Version, Kind: checkpointKind,
		DataHash: c.dataHash, Iteration: iter,
		Payload: payload,
	}
	if hasLL {
		ll := lastLL
		env.BestLL = &ll
	}
	blob, err := json.Marshal(&env)
	if err != nil {
		return fmt.Errorf("core: encoding checkpoint: %w", err)
	}
	c.pending = append(blob, '\n')
	c.lastIter = iter
	return nil
}

// maybeWrite flushes the pending capture when the stride is due.
func (c *checkpointer) maybeWrite() error {
	if c.pending == nil || c.lastIter%c.every != 0 {
		return nil
	}
	return c.flush()
}

// flush writes the pending capture (if any) to disk atomically.
func (c *checkpointer) flush() error {
	if c.pending == nil || c.flushedAt == c.lastIter {
		return nil
	}
	if err := checkpoint.WriteAtomic(c.path, c.pending); err != nil {
		return err
	}
	c.flushedAt = c.lastIter
	return nil
}

// loadFitState reads and validates the checkpoint for a resuming fit,
// restores the model's parameters/kernels/counters from it, and returns the
// restored forest plus the number of completed iterations. A missing file
// reports os.ErrNotExist (the caller treats it as a fresh start).
func (m *Model) loadFitState(c *checkpointer) (forest *branching.Forest, iter int, lastLL float64, hasLL bool, err error) {
	env, err := checkpoint.Load(c.path, checkpointKind)
	if err != nil {
		return nil, 0, 0, false, err
	}
	if env.DataHash != c.dataHash {
		return nil, 0, 0, false, &checkpoint.MismatchError{Field: "data",
			Detail: fmt.Sprintf("checkpoint was written for data %s, resuming with %s", env.DataHash, c.dataHash)}
	}
	var st fitState
	if err := json.Unmarshal(env.Payload, &st); err != nil {
		return nil, 0, 0, false, fmt.Errorf("core: decoding checkpoint state: %w", err)
	}
	if string(st.Config) != string(c.cfgBlob) {
		return nil, 0, 0, false, &checkpoint.MismatchError{Field: "config",
			Detail: "checkpoint was written under a different configuration"}
	}
	if len(st.Mu) != m.M {
		return nil, 0, 0, false, &checkpoint.MismatchError{Field: "data",
			Detail: fmt.Sprintf("checkpoint holds %d dimensions, sequence has %d", len(st.Mu), m.M)}
	}
	m.Mu = st.Mu
	if st.GammaI != nil {
		m.GammaI = st.GammaI
	}
	if st.GammaN != nil {
		m.GammaN = st.GammaN
	}
	if st.Beta != nil {
		m.Beta = st.Beta
	}
	if st.Alpha != nil {
		m.Alpha = st.Alpha
	}
	m.Kernels, err = restoreKernelsExact(st.KernelStep, st.KernelVals, st.KernelCum)
	if err != nil {
		return nil, 0, 0, false, err
	}
	if m.cfg.ExpKernel {
		// ExpKernel fits never update their kernels, so the checkpoint's
		// tabulated form is redundant; rebuild the parametric bank from the
		// config (the fingerprint check above guarantees it matches the run
		// that wrote the checkpoint) so a resumed fit still produces a model
		// eligible for the exponential fast path.
		ek, kerr := kernel.NewExponential(m.cfg.InitKernelRate)
		if kerr != nil {
			return nil, 0, 0, false, kerr
		}
		for i := range m.Kernels {
			m.Kernels[i] = ek
		}
	}
	m.sources = st.Sources
	m.muLo, m.muHi = st.MuLo, st.MuHi
	m.estepCalls = st.EStepCalls
	m.History = st.History
	m.stepScale = st.StepScale
	m.Iterations = env.Iteration
	forest, err = forestFromInts(st.Parents)
	if err != nil {
		return nil, 0, 0, false, err
	}
	return forest, env.Iteration, st.LastHealthyLL, st.HasHealthyLL, nil
}

// restoreKernelsExact is restoreKernels with bit-exact cumulative tables:
// rows with a persisted table adopt it verbatim (see fitState.KernelCum);
// rows without one fall back to recomputation.
func restoreKernelsExact(steps []float64, vals, cums [][]float64) ([]kernel.Kernel, error) {
	if len(steps) != len(vals) {
		return nil, fmt.Errorf("core: kernel table has %d steps but %d value rows", len(steps), len(vals))
	}
	out := make([]kernel.Kernel, len(steps))
	for i := range steps {
		var d *kernel.Discrete
		var err error
		if i < len(cums) && cums[i] != nil {
			d, err = kernel.RestoreDiscrete(steps[i], vals[i], cums[i])
		} else {
			d, err = kernel.NewDiscrete(steps[i], vals[i])
		}
		if err != nil {
			return nil, fmt.Errorf("core: kernel %d: %w", i, err)
		}
		out[i] = d
	}
	return out, nil
}

// isNoCheckpoint reports the "no checkpoint on disk yet" load outcome.
func isNoCheckpoint(err error) bool {
	return errors.Is(err, os.ErrNotExist)
}
