package core

import (
	"context"
	"math"

	"chassis/internal/conformity"
	"chassis/internal/faultinject"
	"chassis/internal/hawkes"
	"chassis/internal/infer"
	"chassis/internal/parallel"
	"chassis/internal/timeline"
)

const lambdaFloor = 1e-12

// srcEvent is one activity that can excite the dimension being optimized.
type srcEvent struct {
	j    int32   // source user
	jIdx int32   // index into sources[i]
	t    float64 // occurrence time
	kInt float64 // ∫₀^{T−t} φᵢ — the linear-link compensator weight
	aN   float64 // αᴺᵢⱼ(t) (β-free, cached per M-step)
}

// winEntry is one (source event, kernel value) pair inside a target's or
// grid point's excitation window.
type winEntry struct {
	src int32
	phi float64
}

// dimData is everything the per-dimension objective needs, precomputed once
// per M-step (the forest, conformity state, and kernels are fixed within
// one M-step).
type dimData struct {
	i       int
	T       float64
	src     []srcEvent
	targets [][]winEntry // one window per event of dimension i
	grid    [][]winEntry // Euler-grid windows (nonlinear links only)
	gridH   float64
}

// buildDimData assembles the fitting structures for dimension i.
func (m *Model) buildDimData(seq *timeline.Sequence, conf *conformity.Computer, i int, needGrid bool) *dimData {
	d := &dimData{i: i, T: seq.Horizon}
	ker := m.Kernels[i]
	support := ker.Support()

	jIdx := make(map[int32]int32, len(m.sources[i]))
	for idx, j := range m.sources[i] {
		jIdx[int32(j)] = int32(idx)
	}
	acts := seq.Activities
	srcOf := make([]int32, len(acts)) // index into d.src, or -1
	for k := range acts {
		srcOf[k] = -1
		j := int32(acts[k].User)
		idx, ok := jIdx[j]
		if !ok {
			continue
		}
		e := srcEvent{
			j: j, jIdx: idx, t: acts[k].Time,
			kInt: ker.Integral(seq.Horizon - acts[k].Time),
		}
		if m.Variant.ConformityAware && m.Variant.UseNormative {
			e.aN = conf.Normative(i, int(j), acts[k].Time)
		}
		srcOf[k] = int32(len(d.src))
		d.src = append(d.src, e)
	}

	// Target windows: for each event of dimension i, the preceding source
	// events inside the kernel support.
	lo := 0
	for k := range acts {
		if int(acts[k].User) != i {
			continue
		}
		t := acts[k].Time
		for lo < len(acts) && acts[lo].Time < t-support {
			lo++
		}
		var win []winEntry
		for w := lo; w < k; w++ {
			if srcOf[w] < 0 {
				continue
			}
			dt := t - acts[w].Time
			if dt <= 0 || dt > support {
				continue
			}
			if phi := ker.Eval(dt); phi > 0 {
				win = append(win, winEntry{src: srcOf[w], phi: phi})
			}
		}
		d.targets = append(d.targets, win)
	}

	if needGrid {
		g := m.cfg.IntegrationGrid
		d.gridH = seq.Horizon / float64(g)
		d.grid = make([][]winEntry, g)
		lo = 0
		for s := 0; s < g; s++ {
			ts := float64(s) * d.gridH // left endpoints
			for lo < len(acts) && acts[lo].Time < ts-support {
				lo++
			}
			var win []winEntry
			for w := lo; w < len(acts); w++ {
				if acts[w].Time >= ts {
					break
				}
				if srcOf[w] < 0 {
					continue
				}
				dt := ts - acts[w].Time
				if dt > support {
					continue
				}
				if phi := ker.Eval(dt); phi > 0 {
					win = append(win, winEntry{src: srcOf[w], phi: phi})
				}
			}
			d.grid[s] = win
		}
	}
	return d
}

// layout describes how one dimension's parameters pack into a flat vector:
// x[0] = μ, then per source the enabled blocks.
type layout struct {
	conformityAware  bool
	useInformational bool
	useNormative     bool
	perSrc           int
}

func (m *Model) layout() layout {
	l := layout{
		conformityAware:  m.Variant.ConformityAware,
		useInformational: m.Variant.UseInformational,
		useNormative:     m.Variant.UseNormative,
	}
	if !l.conformityAware {
		l.perSrc = 1 // α
		return l
	}
	if l.useInformational {
		l.perSrc += 2 // γI, β
	}
	if l.useNormative {
		l.perSrc++ // γN
	}
	return l
}

func (l layout) gammaIIdx(s int) int { return 1 + s*l.perSrc }
func (l layout) betaIdx(s int) int   { return 2 + s*l.perSrc }
func (l layout) gammaNIdx(s int) int {
	base := 1 + s*l.perSrc
	if l.useInformational {
		return base + 2
	}
	return base
}
func (l layout) alphaIdx(s int) int { return 1 + s*l.perSrc }

// pack collects dimension i's current parameters.
func (m *Model) pack(i int) []float64 {
	l := m.layout()
	x := make([]float64, 1+len(m.sources[i])*l.perSrc)
	x[0] = m.Mu[i]
	for s, j := range m.sources[i] {
		if !l.conformityAware {
			x[l.alphaIdx(s)] = m.Alpha[i][j]
			continue
		}
		if l.useInformational {
			x[l.gammaIIdx(s)] = m.GammaI[i][j]
			x[l.betaIdx(s)] = m.Beta[i][j]
		}
		if l.useNormative {
			x[l.gammaNIdx(s)] = m.GammaN[i][j]
		}
	}
	return x
}

// unpack writes an optimized vector back into the model.
func (m *Model) unpack(i int, x []float64) {
	l := m.layout()
	m.Mu[i] = x[0]
	for s, j := range m.sources[i] {
		if !l.conformityAware {
			m.Alpha[i][j] = x[l.alphaIdx(s)]
			continue
		}
		if l.useInformational {
			m.GammaI[i][j] = x[l.gammaIIdx(s)]
			m.Beta[i][j] = x[l.betaIdx(s)]
		}
		if l.useNormative {
			m.GammaN[i][j] = x[l.gammaNIdx(s)]
		}
	}
}

// bounds returns box constraints matching pack's layout. Nonlinear links
// get a much tighter excitation ceiling: the pre-link aggregate enters an
// exponential, so coefficients the fixed integration grid cannot veto would
// otherwise blow the held-out compensator up (e^g) on unseen bursts.
func (m *Model) bounds(i int) (lower, upper []float64) {
	l := m.layout()
	n := 1 + len(m.sources[i])*l.perSrc
	lower = make([]float64, n)
	upper = make([]float64, n)
	_, linear := m.link.(hawkes.LinearLink)
	coefCap := 8.0
	if testCoefCap > 0 {
		coefCap = testCoefCap
	}
	if linear {
		lower[0], upper[0] = 1e-8, 10
	} else {
		lower[0], upper[0] = -12, 3
		coefCap = 4
	}
	if m.muLo != nil {
		lower[0], upper[0] = m.muLo[i], m.muHi[i]
	}
	for s := range m.sources[i] {
		if !l.conformityAware {
			lower[l.alphaIdx(s)], upper[l.alphaIdx(s)] = 0, coefCap
			continue
		}
		if l.useInformational {
			lower[l.gammaIIdx(s)], upper[l.gammaIIdx(s)] = 0, coefCap
			lower[l.betaIdx(s)], upper[l.betaIdx(s)] = 0.01, 20
		}
		if l.useNormative {
			lower[l.gammaNIdx(s)], upper[l.gammaNIdx(s)] = 0, coefCap
		}
	}
	return lower, upper
}

// objective builds dimension i's log-likelihood Objective over the packed
// parameters. For the linear link the compensator is closed-form; for
// nonlinear links it is a fixed-grid Euler sum (the final reported
// likelihoods use the adaptive Theorem 7.1 integrator via the hawkes
// engine; the fixed grid keeps the inner loop fast).
func (m *Model) objective(d *dimData, conf *conformity.Computer) infer.Objective {
	l := m.layout()
	_, linear := m.link.(hawkes.LinearLink)
	// Scratch reused across calls (objectives run single-threaded within
	// one dimension's optimization).
	w := make([]float64, len(d.src))    // per-source-event excitation weight
	aI := make([]float64, len(d.src))   // αᴵ at the source event (current β)
	daI := make([]float64, len(d.src))  // ∂αᴵ/∂β
	clamped := make([]bool, len(d.src)) // linear-link zero-clamp mask
	srcs := m.sources[d.i]
	var curs []conformity.GradCursor
	if l.useInformational {
		curs = make([]conformity.GradCursor, len(srcs))
	}

	return func(x, grad []float64) float64 {
		mu := x[0]
		if l.useInformational {
			// One monotone αᴵ cursor per source slot: β is fixed for the
			// whole evaluation and d.src is chronological, so each pair's
			// interaction history is consumed once per objective call —
			// O(history + events) — instead of rescanned per source event.
			// The cursor is bit-identical to InformationalGrad at every
			// query point, so the fitted floats don't depend on this path.
			for s, j := range srcs {
				curs[s] = conf.InformationalCursor(d.i, j, x[l.betaIdx(s)])
			}
		}
		// Refresh per-source-event weights under the current parameters.
		for idx := range d.src {
			e := &d.src[idx]
			var wt float64
			clamped[idx] = false
			if !l.conformityAware {
				wt = x[l.alphaIdx(int(e.jIdx))]
			} else {
				if l.useInformational {
					ai, dai := curs[e.jIdx].At(e.t)
					aI[idx], daI[idx] = ai, dai
					wt += x[l.gammaIIdx(int(e.jIdx))] * ai
				}
				if l.useNormative {
					wt += x[l.gammaNIdx(int(e.jIdx))] * e.aN
				}
				// Mirror excitation.Alpha: linear-link clamp with zero
				// subgradient while clamped.
				if linear && wt < 0 {
					wt = 0
					clamped[idx] = true
				}
			}
			w[idx] = wt
		}
		if grad != nil {
			for i := range grad {
				grad[i] = 0
			}
		}
		var value float64

		// Event term: Σ ln λ(t_k).
		for _, win := range d.targets {
			g := mu
			for _, en := range win {
				g += w[en.src] * en.phi
			}
			lam := m.link.Apply(g)
			if lam < lambdaFloor {
				lam = lambdaFloor
			}
			value += math.Log(lam)
			if grad == nil {
				continue
			}
			c := m.link.Deriv(g) / lam
			grad[0] += c
			for _, en := range win {
				if clamped[en.src] {
					continue
				}
				m.accumGrad(grad, l, d, en.src, c*en.phi, x, aI, daI)
			}
		}

		// Compensator term.
		if linear {
			value -= math.Max(mu, 0) * d.T
			if grad != nil {
				grad[0] -= d.T
			}
			for idx := range d.src {
				value -= w[idx] * d.src[idx].kInt
				if grad != nil && !clamped[idx] {
					m.accumGrad(grad, l, d, int32(idx), -d.src[idx].kInt, x, aI, daI)
				}
			}
		} else {
			for _, win := range d.grid {
				g := mu
				for _, en := range win {
					g += w[en.src] * en.phi
				}
				lam := m.link.Apply(g)
				value -= d.gridH * lam
				if grad == nil {
					continue
				}
				c := -d.gridH * m.link.Deriv(g)
				grad[0] += c
				for _, en := range win {
					if clamped[en.src] {
						continue
					}
					m.accumGrad(grad, l, d, en.src, c*en.phi, x, aI, daI)
				}
			}
		}
		return value
	}
}

// accumGrad adds scale·∂(w_e)/∂θ into the parameter gradient for source
// event e (w_e = γI·αᴵ + γN·αᴺ, or α for HP baselines).
func (m *Model) accumGrad(grad []float64, l layout, d *dimData, e int32, scale float64, x, aI, daI []float64) {
	s := int(d.src[e].jIdx)
	if !l.conformityAware {
		grad[l.alphaIdx(s)] += scale
		return
	}
	if l.useInformational {
		grad[l.gammaIIdx(s)] += scale * aI[e]
		grad[l.betaIdx(s)] += scale * x[l.gammaIIdx(s)] * daI[e]
	}
	if l.useNormative {
		grad[l.gammaNIdx(s)] += scale * d.src[e].aN
	}
}

// mstepStats is the per-pass measurement mStep fills when the fit is
// observed: the largest per-dimension projected-gradient L2 norm at the
// accepted (damped) parameters — a convergence signal that decays as the
// M-step saturates — and how many dimensions were optimized. Collecting it
// costs one extra objective+gradient evaluation per dimension and reads
// nothing but frozen state, so the fitted parameters are unaffected.
type mstepStats struct {
	gradNorm float64 // max over dims; NaN when no dimension produced one
	dims     int
}

// mStep optimizes every dimension's parameters in parallel against the
// current forest/conformity state. Dimensions are independent — each reads
// the frozen forest/conformity snapshot and writes only its own parameter
// rows — so they fan out over the shared worker pool; the per-dimension
// optimization itself is deterministic, which keeps the fitted parameters
// identical at any worker count. ctx is polled between dimensions; stats,
// when non-nil, receives the pass's gradient-norm measurement. The returned
// error only reports worker panics or cancellation: a dimension whose
// optimizer fails simply keeps its parameters.
func (m *Model) mStep(ctx context.Context, seq *timeline.Sequence, conf *conformity.Computer, stats *mstepStats) error {
	if _, linear := m.link.(hawkes.LinearLink); linear {
		// Linear links take the batched streaming builder: one chronological
		// pass per dimension batch instead of one full-sequence pass per
		// dimension, which is what makes M-steps feasible at paper-scale M
		// (and is the same code path the out-of-core sharded fit drives).
		return m.mStepStream(ctx, memEvents{seq}, conf, stats)
	}
	norms, initStep := m.mstepSetup(stats)
	err := parallel.DoContext(ctx, parallel.Workers(m.cfg.Workers), m.M, func(i int) error {
		d := m.buildDimData(seq, conf, i, true)
		norm := m.optimizeDim(i, d, conf, initStep, norms != nil)
		if norms != nil {
			norms[i] = norm
		}
		return nil
	})
	if err != nil {
		return err
	}
	m.mstepReduce(stats, norms)
	return nil
}

// mstepSetup prepares one M-step pass: the per-dimension norm buffer (only
// when the pass is measured) and the guard-scaled initial ascent step.
func (m *Model) mstepSetup(stats *mstepStats) (norms []float64, initStep float64) {
	if stats != nil {
		norms = make([]float64, m.M)
		for i := range norms {
			norms[i] = math.NaN()
		}
	}
	initStep = 0.05
	if m.stepScale > 0 {
		// Guard recoveries shrink the ascent step; 0 (a zero-value Model,
		// e.g. one rebuilt by LoadModel) means "never recovered".
		initStep *= m.stepScale
	}
	return norms, initStep
}

// mstepReduce folds the per-dimension norms into the pass measurement.
func (m *Model) mstepReduce(stats *mstepStats, norms []float64) {
	if stats == nil {
		return
	}
	stats.dims = m.M
	stats.gradNorm = math.NaN()
	for _, v := range norms {
		if !math.IsNaN(v) && (math.IsNaN(stats.gradNorm) || v > stats.gradNorm) {
			stats.gradNorm = v
		}
	}
}

// mStepStream is the linear-link M-step over any event source: the batched
// streaming builder plus the measurement wrapper. Both the in-memory fit
// (wrapping its training sequence) and the sharded fit (wrapping its flat
// colstore columns) land here, so the two drivers share every float the
// M-step produces.
func (m *Model) mStepStream(ctx context.Context, src eventSource, conf *conformity.Computer, stats *mstepStats) error {
	norms, initStep := m.mstepSetup(stats)
	if err := m.mStepBatches(ctx, src, conf, initStep, norms); err != nil {
		return err
	}
	m.mstepReduce(stats, norms)
	return nil
}

// optimizeDim runs the per-dimension optimizer stage on prepared dimData:
// pack, box bounds, projected-gradient ascent, damped blend, fault-injection
// hook, unpack. It is the shared tail of every M-step flavor (per-dim
// in-memory, batched in-memory, sharded out-of-core) — the builders differ
// in how they assemble d, never in what happens to it, which is half the
// bit-identity argument for the batched paths. Returns the measured
// projected-gradient norm when wantNorm (NaN when the optimizer failed and
// the dimension kept its parameters).
func (m *Model) optimizeDim(i int, d *dimData, conf *conformity.Computer, initStep float64, wantNorm bool) float64 {
	x0 := m.pack(i)
	lower, upper := m.bounds(i)
	obj := m.objective(d, conf)
	res, err := infer.MaximizeProjected(x0, obj, infer.Options{
		MaxIter: m.cfg.MStepIters,
		Lower:   lower, Upper: upper,
		InitStep: initStep, Tol: 1e-7,
	})
	if err != nil {
		return math.NaN() // leave this dimension's parameters unchanged
	}
	// Damped update: the E-step's sampled trees make the objective a
	// noisy target; blending iterates stabilizes the alternation.
	damp := m.cfg.ParamDamping
	for p := range res.X {
		res.X[p] = damp*x0[p] + (1-damp)*res.X[p]
	}
	var grad []float64
	if wantNorm {
		// Projected-gradient evaluation at the accepted point: a pure
		// extra call, the objective reads only its arguments.
		grad = make([]float64, len(res.X))
		obj(res.X, grad)
	}
	if hook := faultinject.MStepResult; hook != nil {
		// Fault injection: the hook may poison the accepted parameters
		// or the reported gradient at deterministic (iter, attempt, dim)
		// coordinates; whatever it plants must be caught by the guard
		// before it reaches the caller.
		hook(m.curIter, m.curAttempt, i, res.X, grad)
	}
	m.unpack(i, res.X)
	if !wantNorm {
		return math.NaN()
	}
	// Components pinned at an active box bound (and pushing outward)
	// carry no usable ascent direction, so they are excluded.
	var ss float64
	for p, g := range grad {
		if (res.X[p] <= lower[p] && g < 0) || (res.X[p] >= upper[p] && g > 0) {
			continue
		}
		ss += g * g
	}
	return math.Sqrt(ss)
}
