package core

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"time"

	"chassis/internal/branching"
	"chassis/internal/colstore"
	"chassis/internal/conformity"
	"chassis/internal/faultinject"
	"chassis/internal/hawkes"
	"chassis/internal/kernel"
	"chassis/internal/obs"
	"chassis/internal/parallel"
	"chassis/internal/rng"
	"chassis/internal/timeline"
)

// ShardedUnsupportedError reports a Config feature the out-of-core driver
// does not implement. FitSharded fails fast with one of these instead of
// silently computing something different from FitContext: every feature it
// does support is bit-identical to the in-memory fit, and features that
// would break that contract (or that inherently need the whole sequence in
// memory, like the nonparametric kernel update's spectral pass) are
// rejected up front.
type ShardedUnsupportedError struct {
	Feature string
}

func (e *ShardedUnsupportedError) Error() string {
	return fmt.Sprintf("core: sharded fit does not support %s", e.Feature)
}

// shardSource is the out-of-core fit's view of a colstore corpus: the flat
// (time, user) columns — 12 bytes per event, the only whole-corpus state the
// driver keeps — plus the global scheduling-chunk grid and its grouping into
// shards. Everything heavier (activity structs for E-step windows, dimData
// for M-step batches) is materialized per shard or per batch and released
// before the next one, which is what bounds peak memory below the corpus
// size: the corpus rows carry kinds, topics, polarities, parents, and text
// that the fit never loads.
type shardSource struct {
	times   []float64
	users   []uint32
	horizon float64
	// chunks is the fixed estepChunkSize grid over [0, n) — the same grid
	// the in-memory E-step shards over, so chunk indices (and with them the
	// per-chunk RNG streams) are identical in both drivers.
	chunks []parallel.Range
	// shards groups consecutive chunks: shard s covers
	// chunks[shards[s][0]:shards[s][1]], at least Config.ShardEvents events
	// except for the final remainder.
	shards [][2]int
	// buf is the reusable activity window, grown to the largest
	// shard+halo seen.
	buf []timeline.Activity
}

func newShardSource(rd *colstore.Reader, shardEvents int) (*shardSource, error) {
	n := rd.NumEvents()
	s := &shardSource{
		times:   make([]float64, n),
		users:   make([]uint32, n),
		horizon: rd.Horizon(),
		chunks:  parallel.Chunks(n, estepChunkSize),
	}
	err := rd.Scan(0, n, func(g int, t float64, user int) {
		s.times[g] = t
		s.users[g] = uint32(user)
	})
	if err != nil {
		return nil, err
	}
	for c0 := 0; c0 < len(s.chunks); {
		c1, events := c0, 0
		for c1 < len(s.chunks) && events < shardEvents {
			events += s.chunks[c1].Hi - s.chunks[c1].Lo
			c1++
		}
		s.shards = append(s.shards, [2]int{c0, c1})
		c0 = c1
	}
	return s, nil
}

// forEachShard materializes each shard's halo-extended activity window and
// hands it to fn together with the shard's slice of the global chunk grid.
// The halo extends the window left to the first event within one kernel
// support of the shard's first event, which is exactly the invariant
// windowStartIn needs: every sliding-window query a chunk body issues stays
// inside the window, so shard-local scans see precisely the events the
// in-memory scan sees. Shards run sequentially — one window lives at a time.
//
// Windows carry only the fields the chunk bodies read (ID, Time, User;
// Parent pinned to NoParent like a stripped sequence) — text and marks stay
// on disk.
func (s *shardSource) forEachShard(support float64, fn func(win []timeline.Activity, off int, chunks []parallel.Range) error) error {
	for _, sh := range s.shards {
		chunks := s.chunks[sh[0]:sh[1]]
		lo, hi := chunks[0].Lo, chunks[len(chunks)-1].Hi
		off := sort.SearchFloat64s(s.times, s.times[lo]-support)
		need := hi - off
		if cap(s.buf) < need {
			s.buf = make([]timeline.Activity, need)
		}
		win := s.buf[:need]
		for g := off; g < hi; g++ {
			win[g-off] = timeline.Activity{
				ID:     timeline.ActivityID(g),
				Time:   s.times[g],
				User:   timeline.UserID(s.users[g]),
				Parent: timeline.NoParent,
			}
		}
		if err := fn(win, off, chunks); err != nil {
			return err
		}
	}
	return nil
}

// colEvents adapts the flat columns to the M-step's eventSource: one tight
// chronological (time, user) pass per dimension batch.
type colEvents struct{ s *shardSource }

func (c colEvents) horizon() float64 { return c.s.horizon }

func (c colEvents) scan(fn func(t float64, user int)) error {
	for k := range c.s.times {
		fn(c.s.times[k], int(c.s.users[k]))
	}
	return nil
}

// bootstrapForestSharded is bootstrapForest driven shard-by-shard: the same
// global chunk grid, the same Split(101)-derived per-chunk RNG streams, the
// same chunk body — only the storage the chunks read through changes.
func (m *Model) bootstrapForestSharded(ctx context.Context, sh *shardSource) (*branching.Forest, error) {
	base := rng.New(m.cfg.Seed).Split(101)
	parents := make([]int32, len(sh.times))
	workers := parallel.Workers(m.cfg.Workers)
	support := m.Kernels[0].Support()
	err := sh.forEachShard(support, func(win []timeline.Activity, off int, chunks []parallel.Range) error {
		return parallel.DoContext(ctx, workers, len(chunks), func(ci int) error {
			c := chunks[ci]
			r := base.Split(int64(c.Index) + 1)
			m.bootstrapChunk(win, off, c, r, parents)
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	return branching.FromParents32(parents)
}

// eStepSharded is eStepMode driven shard-by-shard. The per-chunk RNG
// streams, entropy accumulators, and parents slots are all indexed by global
// chunk/event position, so the inferred forest — and the reported entropy —
// are bit-identical to the in-memory pass at any worker count and shard
// size. conf is the iteration's frozen conformity snapshot (nil for the
// baseline variants); the excitation it parameterizes is queried by
// (receiver, source, time) only, which is why the shard windows never need
// polarity columns.
func (m *Model) eStepSharded(ctx context.Context, sh *shardSource, conf *conformity.Computer, mapMode bool, prev *branching.Forest, stats *estepStats) (*branching.Forest, error) {
	m.estepCalls++
	base := rng.New(m.cfg.Seed).Split(211 + int64(m.estepCalls))
	exc := excitation{m: m, conf: conf}
	parents := make([]int32, len(sh.times))
	maxSupport := 0.0
	for _, ker := range m.Kernels {
		if s := ker.Support(); s > maxSupport {
			maxSupport = s
		}
	}
	var entSum []float64
	var entCnt []int
	if stats != nil {
		entSum = make([]float64, len(sh.chunks))
		entCnt = make([]int, len(sh.chunks))
	}
	workers := parallel.Workers(m.cfg.Workers)
	err := sh.forEachShard(maxSupport, func(win []timeline.Activity, off int, chunks []parallel.Range) error {
		return parallel.DoContext(ctx, workers, len(chunks), func(ci int) error {
			c := chunks[ci]
			r := base.Split(int64(c.Index) + 1)
			m.eStepChunk(win, off, c, r, exc, maxSupport, mapMode, prev, parents, entSum, entCnt)
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	if stats != nil {
		var sum float64
		var cnt int
		for idx := range entSum {
			sum += entSum[idx]
			cnt += entCnt[idx]
		}
		stats.events = cnt
		stats.entropy = math.NaN()
		if cnt > 0 {
			stats.entropy = sum / float64(cnt)
		}
	}
	return branching.FromParents32(parents)
}

// FitSharded runs the EM fit out-of-core against a colstore corpus: the
// E-step and bootstrap walk the corpus shard-by-shard through halo-extended
// windows, the M-step streams (time, user) columns through the batched
// builder, and peak memory is bounded by O(events)·12 bytes of flat columns
// plus one shard of activity structs plus one dimension batch — never the
// materialized corpus. The supported configuration subset — linear-link
// variants, conformity-aware (CHASSIS-L/LI/LN) or not (L-HP/E-HP), with a
// fixed or parametric-exponential kernel — is bit-identical to FitContext on
// the equivalent in-memory sequence at every Workers and ShardEvents
// setting; see DESIGN.md §15–§16 for the argument. Unsupported features fail
// with *ShardedUnsupportedError.
//
// Conformity-aware fits rebuild the pair-history computer from a streaming
// colstore scan (times, users, polarities) once per conformity refresh,
// through the same column-built path conformity.New uses — the snapshot, and
// with it every fitted parameter, matches the in-memory fit bit for bit. The
// transient scan state is O(events)·20 bytes plus the retained per-pair
// series; Config.Conformity.MaxActivePairs bounds the latter, failing with
// *conformity.PairBudgetError instead of exhausting memory on adversarially
// dense corpora.
//
// Checkpointing and resume work as in FitContext, with the corpus identified
// by the colstore footer fingerprint instead of the sequence hash. An
// attached observer receives the usual callbacks except that training
// log-likelihoods are never computed (TrainLLValid stays false): evaluating
// Eq. 7.1 needs the hawkes engine's full-sequence compensators, and
// observation must not change what the driver can fit.
//
// The returned model carries no training sequence: methods that re-read it
// (TrainLogLikelihood, HeldOutLogLikelihood) report an error.
func FitSharded(ctx context.Context, rd *colstore.Reader, cfg Config, opts ...Option) (*Model, error) {
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if rd == nil || rd.NumEvents() == 0 {
		return nil, errors.New("core: empty colstore corpus")
	}
	link, err := cfg.Variant.Link()
	if err != nil {
		return nil, err
	}
	switch {
	case cfg.UseObservedTrees:
		return nil, &ShardedUnsupportedError{Feature: "UseObservedTrees (platform connectivity arrives with a sequence, not a colstore corpus)"}
	case cfg.TrackHistory:
		return nil, &ShardedUnsupportedError{Feature: "TrackHistory (training LL needs the full sequence)"}
	case cfg.Guard.Enabled:
		return nil, &ShardedUnsupportedError{Feature: "the numerical guard (its LL regression check needs the full sequence)"}
	}
	if _, linear := link.(hawkes.LinearLink); !linear {
		// Nonlinear compensators integrate over an Euler grid whose windows
		// the batched streaming builder does not assemble.
		if cfg.Variant.ConformityAware {
			return nil, &ShardedUnsupportedError{Feature: "conformity-aware variants with nonlinear links (Euler-grid compensators need the full sequence; use CHASSIS-L/LI/LN)"}
		}
		return nil, &ShardedUnsupportedError{Feature: "nonlinear links"}
	}

	sh, err := newShardSource(rd, cfg.ShardEvents)
	if err != nil {
		return nil, err
	}
	if cfg.KernelSupport <= 0 {
		cfg.KernelSupport = supportFromTimes(sh.times, rd.Horizon())
	}
	if cfg.InitKernelRate <= 0 {
		cfg.InitKernelRate = 5 / cfg.KernelSupport
	}
	if cfg.ExpKernel {
		cfg.FixedKernel = true
	}
	if !cfg.FixedKernel {
		// The nonparametric update (Eqs. 7.5–7.8) DFTs whole counting
		// processes per dimension — inherently a full-sequence pass.
		if cfg.Variant.ConformityAware {
			return nil, &ShardedUnsupportedError{Feature: "conformity-aware variants with nonparametric kernel updates (the spectral pass needs the full sequence; set FixedKernel or ExpKernel)"}
		}
		return nil, &ShardedUnsupportedError{Feature: "nonparametric kernel updates (set FixedKernel or ExpKernel)"}
	}
	return fitShardedOn(ctx, rd, sh, cfg)
}

// fitShardedOn is FitSharded past validation: cfg is filled, gated, and has
// its kernel support resolved, and sh already holds the corpus columns. The
// conformity warm-start pilot recurses here with the L-HP pilot config so it
// reuses the shard source instead of re-scanning the corpus.
func fitShardedOn(ctx context.Context, rd *colstore.Reader, sh *shardSource, cfg Config) (*Model, error) {
	link, err := cfg.Variant.Link()
	if err != nil {
		return nil, err
	}
	obsv := cfg.observer
	metrics := cfg.metrics
	if obsv != nil && metrics == nil {
		metrics = obs.NewMetrics()
		cfg.metrics = metrics
	}

	// Baseline variants allocate only the excitation matrix — the conformity
	// parameter matrices stay nil, exactly as LoadModel leaves them for
	// persisted baseline models. Conformity-aware variants get the same dense
	// parameter set the in-memory fit carries.
	m := &Model{
		M: rd.M(), Variant: cfg.Variant, Horizon: rd.Horizon(),
		Mu:      make([]float64, rd.M()),
		Alpha:   dense(rd.M()),
		Kernels: make([]kernel.Kernel, rd.M()),
		cfg:     cfg, link: link,
		stepScale: 1,
	}
	if cfg.Variant.ConformityAware {
		m.GammaI, m.GammaN, m.Beta = dense(m.M), dense(m.M), dense(m.M)
	}

	var ckpt *checkpointer
	if cfg.CheckpointDir != "" {
		if ckpt, err = newCheckpointer(cfg, rd.Fingerprint()); err != nil {
			return nil, err
		}
	}

	var forest *branching.Forest
	startIter := 0
	var lastHealthyLL float64
	var hasHealthyLL bool
	resumed := false
	if cfg.Resume {
		f, it, ll, hasLL, err := m.loadFitState(ckpt)
		switch {
		case err == nil:
			forest, startIter = f, it
			lastHealthyLL, hasHealthyLL = ll, hasLL
			resumed = true
		case isNoCheckpoint(err):
		default:
			return nil, err
		}
	}

	if !resumed {
		if err := m.initKernels(); err != nil {
			return nil, err
		}
		m.sources = cooccurrenceFromCols(sh.times, sh.users, m.M, cfg.KernelSupport)
		m.initParams(nil)
		// Conformity-aware fits warm-start from a short sharded L-HP pilot —
		// the same pilot FitContext runs, for the same reason (cold trees make
		// conformity zero and EM collapses to the all-immigrant fixed point).
		// Linear non-conformity fits never warm-start: the bootstrap forest is
		// the initialization.
		needWarm := cfg.Variant.ConformityAware && !cfg.NoWarmStart
		if needWarm {
			hpCfg := cfg
			hpCfg.Variant = VariantLHP
			hpCfg.EMIters = cfg.EMIters/3 + 2
			hpCfg.NoWarmStart = true
			hpCfg.TrackHistory = false
			// Shares the metrics registry, never the observer or checkpoint —
			// see the FitContext pilot for the contract.
			hpCfg.observer = nil
			hpCfg.CheckpointDir = ""
			hpCfg.Resume = false
			hp, err := fitShardedOn(ctx, rd, sh, hpCfg)
			if err != nil {
				return nil, wrapCancel("warmstart", 0, err)
			}
			copy(m.Kernels, hp.Kernels)
			forest = hp.Forest
			// Pin μ to a band around the pilot's exogenous estimate (only the
			// linear branch of FitContext's band applies: nonlinear links never
			// reach this driver).
			m.muLo = make([]float64, m.M)
			m.muHi = make([]float64, m.M)
			for i, mu := range hp.Mu {
				m.Mu[i] = mu
				m.muLo[i] = mu * 0.25
				m.muHi[i] = mu*cfg.MuBandHigh + 1e-6
			}
		} else {
			forest, err = m.bootstrapForestSharded(ctx, sh)
			if err != nil {
				return nil, wrapCancel("bootstrap", 0, err)
			}
		}
		if cfg.Variant.ConformityAware && forest != nil {
			// Conformity variants draw their pair support from the diffusion
			// trees (the pairs with interaction history); co-occurrence ranks
			// fill the remaining slots. Same re-rank + re-init as FitContext,
			// through the shared column-ranking body.
			m.sources = forestSourcesFromCols(sh.users, m.M, forest, m.sources)
			m.initParams(nil)
			if m.muLo != nil {
				// Re-initializing overwrote the pinned μ; restore the band
				// centers.
				for i := range m.Mu {
					m.Mu[i] = (m.muLo[i] + m.muHi[i]) / 2
				}
			}
		}
	}

	refreshEvery := cfg.EMIters / 3
	if refreshEvery < 2 {
		refreshEvery = 2
	}
	if testRefreshEvery > 0 {
		refreshEvery = testRefreshEvery
	}
	// buildConf streams the corpus columns straight off the colstore blocks
	// into the conformity accumulator — pass 1 of the two-pass iteration
	// (DESIGN.md §16). The polarity column is never resident in the shard
	// source; only the accumulator's transient copy and the finalized
	// computer's pair series live across the scan. Finalize feeds the exact
	// column-built path conformity.New uses, so the snapshot is bit-identical
	// to the in-memory fit's.
	var conf *conformity.Computer
	buildConf := func(f *branching.Forest) (*conformity.Computer, error) {
		acc := conformity.NewAccumulator(m.M, cfg.Conformity)
		var appendErr error
		if err := rd.ScanPolar(0, rd.NumEvents(), func(g int, t float64, user int, pol float64) {
			if appendErr == nil {
				appendErr = acc.Append(t, user, pol)
			}
		}); err != nil {
			return nil, err
		}
		if appendErr != nil {
			return nil, appendErr
		}
		return acc.Finalize(f)
	}
	rebuildConf := func() error {
		if !cfg.Variant.ConformityAware {
			return nil
		}
		var err error
		conf, err = buildConf(forest)
		return err
	}
	if err := rebuildConf(); err != nil {
		return nil, err
	}
	eulerCounter := metrics.Counter("hawkes.euler_steps")

	fail := func(err error) error {
		if ckpt != nil {
			ckpt.flush() // best-effort: the primary error wins
		}
		return err
	}

	// One EM iteration, mirroring FitContext's runIter minus the gated
	// features: no kernel update (FixedKernel enforced), no training-LL
	// evaluation, no guard health checks.
	runIter := func(iterNo int) (st obs.IterStats, err error) {
		if obsv != nil {
			obsv.OnIterStart(iterNo)
		}
		iterStart := time.Now()
		st = obs.IterStats{Iter: iterNo}
		eulerBefore := eulerCounter.Value()
		defer func() {
			st.Seconds = time.Since(iterStart).Seconds()
			st.EulerSteps = eulerCounter.Value() - eulerBefore
		}()

		var ms *mstepStats
		if obsv != nil {
			ms = &mstepStats{}
		}
		msStart := time.Now()
		if err = m.mStepStream(ctx, colEvents{sh}, conf, ms); err != nil {
			err = wrapCancel("mstep", iterNo, err)
			return
		}
		msDur := time.Since(msStart)
		st.MStepSeconds = msDur.Seconds()
		metrics.Timer("core.mstep").Add(msDur)
		if ms != nil && !math.IsNaN(ms.gradNorm) {
			st.GradNorm, st.GradNormValid = ms.gradNorm, true
		}
		if obsv != nil {
			obsv.OnMStep(obs.MStepStats{
				Iter: iterNo, Seconds: st.MStepSeconds,
				GradNorm: st.GradNorm, GradNormValid: st.GradNormValid,
				Dims: ms.dims,
			})
		}
		if iterNo%refreshEvery == 0 && iterNo < cfg.EMIters {
			mapMode := cfg.MAPEStep || iterNo-1 >= cfg.EMIters/2
			var es *estepStats
			if obsv != nil {
				es = &estepStats{}
			}
			eStart := time.Now()
			forest, err = m.eStepSharded(ctx, sh, conf, mapMode, forest, es)
			if err != nil {
				err = wrapCancel("estep", iterNo, err)
				return
			}
			eDur := time.Since(eStart)
			st.EStepSeconds = eDur.Seconds()
			metrics.Timer("core.estep").Add(eDur)
			if obsv != nil {
				if !math.IsNaN(es.entropy) {
					st.Entropy, st.EntropyValid = es.entropy, true
				}
				obsv.OnEStep(obs.EStepStats{
					Iter: iterNo, Seconds: st.EStepSeconds,
					Entropy: st.Entropy, EntropyValid: st.EntropyValid,
					Events: es.events, MAP: mapMode,
				})
			}
			if err = rebuildConf(); err != nil {
				return
			}
		}
		m.Iterations = iterNo
		return
	}

	for iter := startIter; iter < cfg.EMIters; iter++ {
		iterNo := iter + 1
		m.curIter, m.curAttempt = iterNo, 0
		st, err := runIter(iterNo)
		if err != nil {
			return nil, fail(err)
		}
		if obsv != nil {
			obsv.OnIterEnd(st)
		}
		if ckpt != nil {
			if err := ckpt.capture(m, forest, iterNo, lastHealthyLL, hasHealthyLL); err != nil {
				return nil, err
			}
			if err := ckpt.maybeWrite(); err != nil {
				return nil, err
			}
		}
		if hook := faultinject.CrashAfterIter; hook != nil && ckpt != nil && hook(iterNo) {
			return nil, fmt.Errorf("core: after iteration %d: %w", iterNo, faultinject.ErrInjectedCrash)
		}
	}
	if ckpt != nil {
		if err := ckpt.flush(); err != nil {
			return nil, err
		}
	}
	// Final MAP tree readout under the converged parameters, then — for
	// conformity-aware fits — the final conformity snapshot under the read-out
	// trees, matching FitContext's epilogue.
	forest, err = m.eStepSharded(ctx, sh, conf, true, nil, nil)
	if err != nil {
		return nil, wrapCancel("readout", 0, err)
	}
	m.Forest = forest
	if cfg.Variant.ConformityAware {
		if m.Conf, err = buildConf(forest); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// Fingerprint digests the fitted state — μ, the parameters on the active
// pair support, and the inferred forest — into a short stable string. Two
// fits are fingerprint-equal exactly when they produced bit-identical
// parameters and parent assignments, which is how the sharded-vs-in-memory
// identity suite (and the CLI's printed fingerprint) compare runs without
// shipping whole models around.
func (m *Model) Fingerprint() string {
	h := fnv.New64a()
	buf := make([]byte, 8)
	w64 := func(v uint64) {
		for b := 0; b < 8; b++ {
			buf[b] = byte(v >> (8 * b))
		}
		h.Write(buf)
	}
	wf := func(f float64) { w64(math.Float64bits(f)) }
	w64(uint64(m.M))
	wf(m.Horizon)
	for _, v := range m.Mu {
		wf(v)
	}
	for i := 0; i < m.M && i < len(m.sources); i++ {
		for _, j := range m.sources[i] {
			w64(uint64(j))
			if !m.Variant.ConformityAware {
				wf(m.Alpha[i][j])
				continue
			}
			if m.Variant.UseInformational {
				wf(m.GammaI[i][j])
				wf(m.Beta[i][j])
			}
			if m.Variant.UseNormative {
				wf(m.GammaN[i][j])
			}
		}
	}
	for _, p := range parentInts(m.Forest) {
		w64(uint64(int64(p)))
	}
	return fmt.Sprintf("model:%016x", h.Sum64())
}
