package core

import (
	"context"
	"math"
	"math/cmplx"

	"chassis/internal/conformity"
	"chassis/internal/dft"
	"chassis/internal/kernel"
	"chassis/internal/parallel"
	"chassis/internal/timeline"
)

// updateKernels is the nonparametric half of the M-step (Eqs. 7.5–7.8):
// per receiving dimension i,
//
//  1. bin the counting process into N slots and DFT it (Eq. 7.5 gives
//     Λᵢ[n]);
//  2. divide out the excitation: the denominator of Eq. 7.6 is the
//     Taylor-linearized transform of the excitation train,
//     Fᵢ'(μᵢ)·Σₑ αᵢⱼₑ(tₑ)·e^{−jωₙtₑ}, with the DC bin first corrected for
//     the exogenous mass 2π·Fᵢ(μᵢ)δ(ω) → Fᵢ(μᵢ)·T (Eq. 7.7);
//  3. IDFT back (Eq. 7.8), truncate to the kernel support, clamp the
//     (noise-induced) negative ripple, and renormalize to unit mass so
//     the excitation coefficients keep carrying the branching magnitude.
//
// The spectral division is Tikhonov-regularized — the raw division of
// Eq. 7.6 explodes wherever the excitation spectrum has a near-zero bin —
// and the result is blended with the previous kernel (KernelDamping) so the
// alternating EM procedure cannot oscillate.
//
// Each receiving dimension's estimate is independent — it reads the frozen
// parameters/conformity state and replaces only m.Kernels[i] — so the loop
// fans out over the worker pool, polling ctx between dimensions. The
// returned error only surfaces worker panics or cancellation; estimation
// failures keep the previous kernel, as before.
func (m *Model) updateKernels(ctx context.Context, seq *timeline.Sequence, conf *conformity.Computer) error {
	const fftBins = 256
	const tikhonov = 1e-3
	exc := excitation{m: m, conf: conf}
	T := seq.Horizon
	delta := T / fftBins
	taps := int(math.Ceil(m.cfg.KernelSupport / delta))
	if taps < 2 {
		taps = 2
	}
	if taps > fftBins/2 {
		taps = fftBins / 2
	}

	return parallel.DoContext(ctx, parallel.Workers(m.cfg.Workers), m.M, func(i int) error {
		counts := seq.CountingProcess(timeline.UserID(i), fftBins)
		var total float64
		for _, c := range counts {
			total += c
		}
		if total < 4 {
			return nil // not enough signal to estimate a kernel for i
		}
		lam := dft.ForwardReal(counts)

		// Excitation train of dimension i in bin units.
		denom := make([]complex128, fftBins)
		fpmu := m.link.Deriv(m.Mu[i])
		var alphaMass float64
		for k := range seq.Activities {
			a := &seq.Activities[k]
			alpha := exc.Alpha(i, int(a.User), a.Time)
			if alpha <= 0 {
				continue
			}
			alphaMass += alpha
			pos := a.Time / delta
			// e^{−jωₙ·pos} for ωₙ = 2πn/N, built by repeated
			// multiplication instead of per-bin trig.
			step := cmplx.Rect(1, -2*math.Pi*pos/fftBins)
			w := complex(alpha, 0)
			for n := 0; n < fftBins; n++ {
				denom[n] += w
				w *= step
			}
		}
		if alphaMass <= 0 || fpmu <= 0 {
			return nil
		}
		// DC correction (Eq. 7.7): remove the expected exogenous count.
		lam[0] -= complex(m.link.Apply(m.Mu[i])*T, 0)

		var maxD float64
		for n := range denom {
			denom[n] *= complex(fpmu, 0)
			if a := cmplx.Abs(denom[n]); a > maxD {
				maxD = a
			}
		}
		if maxD == 0 {
			return nil
		}
		eps := tikhonov * maxD * maxD
		phiF := make([]complex128, fftBins)
		for n := range phiF {
			d := denom[n]
			phiF[n] = lam[n] * cmplx.Conj(d) / complex(real(d)*real(d)+imag(d)*imag(d)+eps, 0)
		}
		phiT := dft.Inverse(phiF)

		values := make([]float64, taps)
		for k := 0; k < taps; k++ {
			v := real(phiT[k])
			if v < 0 || math.IsNaN(v) {
				v = 0
			}
			values[k] = v
		}
		est, err := kernel.NewDiscrete(delta, values)
		if err != nil || est.Mass() <= 0 {
			return nil
		}
		est.Normalize()

		// Damped blend with the previous kernel on the same grid.
		blended := make([]float64, taps)
		d := m.cfg.KernelDamping
		for k := 0; k < taps; k++ {
			t := float64(k) * delta
			blended[k] = d*m.Kernels[i].Eval(t) + (1-d)*est.Eval(t)
		}
		nk, err := kernel.NewDiscrete(delta, blended)
		if err != nil || nk.Mass() <= 0 {
			return nil
		}
		nk.Normalize()
		m.Kernels[i] = nk
		return nil
	})
}
