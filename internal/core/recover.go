package core

import (
	"chassis/internal/branching"
	"chassis/internal/guard"
	"chassis/internal/kernel"
	"chassis/internal/obs"
)

// emSnapshot is the rollback point the numerical guard captures before each
// EM iteration: deep copies of everything one iteration attempt mutates, so
// a failed attempt can be undone and retried with a smaller step. The RNG
// needs no snapshot — restoring estepCalls pins the E-step streams.
type emSnapshot struct {
	mu                          []float64
	gammaI, gammaN, beta, alpha [][]float64
	kernels                     []kernel.Kernel
	forest                      *branching.Forest
	estepCalls                  int
	historyLen                  int
	iterations                  int
}

// snapshotState captures the pre-iteration state.
func (m *Model) snapshotState(forest *branching.Forest) *emSnapshot {
	return &emSnapshot{
		mu:     append([]float64(nil), m.Mu...),
		gammaI: copyMat(m.GammaI), gammaN: copyMat(m.GammaN),
		beta: copyMat(m.Beta), alpha: copyMat(m.Alpha),
		// Kernel updates replace slice elements and never mutate a kernel
		// in place, so copying the slice header row is enough.
		kernels:    append([]kernel.Kernel(nil), m.Kernels...),
		forest:     forest,
		estepCalls: m.estepCalls,
		historyLen: len(m.History),
		iterations: m.Iterations,
	}
}

// restoreState rolls the model back to a snapshot. The snapshot's own
// buffers are re-copied so a second failed attempt can restore again.
// stepScale is deliberately NOT restored: the backoff is the recovery.
func (m *Model) restoreState(s *emSnapshot) {
	m.Mu = append([]float64(nil), s.mu...)
	m.GammaI, m.GammaN = copyMat(s.gammaI), copyMat(s.gammaN)
	m.Beta, m.Alpha = copyMat(s.beta), copyMat(s.alpha)
	m.Kernels = append([]kernel.Kernel(nil), s.kernels...)
	m.estepCalls = s.estepCalls
	if len(m.History) > s.historyLen {
		m.History = m.History[:s.historyLen]
	}
	m.Iterations = s.iterations
}

// copyMat deep-copies a dense matrix.
func copyMat(src [][]float64) [][]float64 {
	out := make([][]float64, len(src))
	for i := range src {
		out[i] = append([]float64(nil), src[i]...)
	}
	return out
}

// checkParamsFinite verifies every fitted parameter and tabulated kernel is
// finite, returning the phase ("mstep" for parameters, "kernels" for
// kernels) alongside the first violation.
func (m *Model) checkParamsFinite() (string, *guard.Violation) {
	if v := guard.CheckVec("mu", m.Mu); v != nil {
		return "mstep", v
	}
	if m.Variant.ConformityAware {
		if v := guard.CheckMat("gamma_i", m.GammaI); v != nil {
			return "mstep", v
		}
		if v := guard.CheckMat("gamma_n", m.GammaN); v != nil {
			return "mstep", v
		}
		if v := guard.CheckMat("beta", m.Beta); v != nil {
			return "mstep", v
		}
	} else if v := guard.CheckMat("alpha", m.Alpha); v != nil {
		return "mstep", v
	}
	for _, k := range m.Kernels {
		if d, ok := k.(*kernel.Discrete); ok {
			if v := guard.CheckVec("kernel", d.Values); v != nil {
				return "kernels", v
			}
		}
	}
	return "", nil
}

// healthCheck runs the guard's post-M-step checks: parameter/kernel
// finiteness plus the gradient-norm explosion threshold (the training-LL
// regression check runs separately, after the likelihood is evaluated).
func (m *Model) healthCheck(pol *guard.Policy, st obs.IterStats) (string, *guard.Violation) {
	if phase, v := m.checkParamsFinite(); v != nil {
		return phase, v
	}
	if st.GradNormValid {
		if v := pol.CheckGradNorm(st.GradNorm); v != nil {
			return "mstep", v
		}
	}
	return "", nil
}
