package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"chassis/internal/branching"
	"chassis/internal/conformity"
	"chassis/internal/faultinject"
	"chassis/internal/guard"
	"chassis/internal/hawkes"
	"chassis/internal/kernel"
	"chassis/internal/obs"
	"chassis/internal/rng"
	"chassis/internal/timeline"
)

// MaxSourcesPerDim caps the optimizer's per-dimension pair support: the
// strongest co-occurring source users are kept, the long tail (which
// carries almost no likelihood signal but linear cost) is dropped.
const MaxSourcesPerDim = 15

// Fit runs the semi-parametric EM of Sections 6–7 on a training sequence
// and returns the fitted model. It is FitContext without cancellation or
// observability hooks.
func Fit(seq *timeline.Sequence, cfg Config) (*Model, error) {
	return FitContext(nil, seq, cfg)
}

// FitContext is Fit with lifecycle control: ctx cancels the EM loop
// cooperatively — the cancellation is honored at the chunk/job boundaries
// of the parallel worker pool, the error is a *CanceledError wrapping
// ctx.Err() and naming the iteration and phase it aborted in, and no model
// (partial state) is returned — and opts attach observability
// (WithObserver, WithMetrics). An attached observer or registry only reads
// fitted state, so the fitted parameters and forest are bit-identical to an
// unobserved Fit at every Workers setting. ctx may be nil (never
// cancelled).
func FitContext(ctx context.Context, seq *timeline.Sequence, cfg Config, opts ...Option) (*Model, error) {
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if seq == nil || seq.Len() == 0 {
		return nil, errors.New("core: empty training sequence")
	}
	// Full input validation before any EM work: structural invariants plus
	// the dirty-input classes (non-finite polarities, duplicate events) that
	// would otherwise poison the fit silently. The wrapped error is a
	// *timeline.ValidationError; timeline.Sequence.Repair fixes the
	// repairable classes.
	if err := seq.Check(); err != nil {
		return nil, fmt.Errorf("core: invalid training sequence: %w", err)
	}
	if cfg.KernelSupport <= 0 {
		// Data-driven kernel horizon. Bursty streams make the median gap
		// collapse to the intra-burst spacing, which would cut slow
		// triggering tails (replies to a cascade's root minutes later), so
		// the scale comes from an upper gap quantile with a median-based
		// floor, capped so sparse streams don't blow the support up to the
		// whole window.
		cfg.KernelSupport = supportHeuristic(seq)
	}
	if cfg.InitKernelRate <= 0 {
		cfg.InitKernelRate = 5 / cfg.KernelSupport
	}
	if cfg.ExpKernel {
		// A parametric exponential kernel has no nonparametric update to
		// apply; the flag subsumes the ablation knob.
		cfg.FixedKernel = true
	}
	link, err := cfg.Variant.Link()
	if err != nil {
		return nil, err
	}

	obsv := cfg.observer
	metrics := cfg.metrics
	if obsv != nil && metrics == nil {
		// Observer without registry: instrument into a private registry so
		// per-iteration Euler-step counts still reach IterStats.
		metrics = obs.NewMetrics()
		cfg.metrics = metrics
	}

	m := &Model{
		M: seq.M, Variant: cfg.Variant, Horizon: seq.Horizon,
		Mu:     make([]float64, seq.M),
		GammaI: dense(seq.M), GammaN: dense(seq.M),
		Beta: dense(seq.M), Alpha: dense(seq.M),
		Kernels: make([]kernel.Kernel, seq.M),
		cfg:     cfg, link: link, seq: seq,
		stepScale: 1,
	}

	// Unless the platform exposes connectivity, the sequence must be
	// treated as unlabeled: inference never reads the ground-truth parents.
	work := seq.StripParents()
	var observed *branching.Forest
	if cfg.UseObservedTrees {
		observed, err = branching.FromSequence(seq)
		if err != nil {
			return nil, fmt.Errorf("core: UseObservedTrees: %w", err)
		}
	}

	var ckpt *checkpointer
	if cfg.CheckpointDir != "" {
		if ckpt, err = newCheckpointer(cfg, sequenceFingerprint(seq)); err != nil {
			return nil, err
		}
	}

	var forest *branching.Forest
	startIter := 0
	var lastHealthyLL float64
	var hasHealthyLL bool
	resumed := false
	if cfg.Resume {
		f, it, ll, hasLL, err := m.loadFitState(ckpt)
		switch {
		case err == nil:
			// Everything the interrupted run computed before the EM loop —
			// kernels, sources, μ bands, the warm-start pilot's output — is
			// inside the checkpoint, so the whole initialization below is
			// skipped and the loop continues exactly where it stopped.
			forest, startIter = f, it
			lastHealthyLL, hasHealthyLL = ll, hasLL
			resumed = true
		case isNoCheckpoint(err):
			// Nothing on disk yet: a resume of a never-started run is a
			// fresh start, so deployments can pass -resume unconditionally.
		default:
			return nil, err
		}
	}

	if !resumed {
		if err := m.initKernels(); err != nil {
			return nil, err
		}

		m.sources = cooccurrenceSources(seq, cfg.KernelSupport)
		m.initParams(seq)

		_, linear := m.link.(hawkes.LinearLink)
		// The warm start (L-HP pilot + μ band) exists to bootstrap *tree
		// inference*: without credible first trees, conformity is zero and EM
		// collapses to the all-immigrant fixed point. When the platform exposes
		// connectivity the trees are given, conformity is informative from the
		// first iteration, and the unconstrained fit is strictly better — so
		// observed-tree fits skip the pilot entirely.
		needWarm := (cfg.Variant.ConformityAware || !linear) && !cfg.NoWarmStart && observed == nil
		if observed != nil {
			forest = observed
		} else if needWarm {
			// Conformity quantities are computed from diffusion trees, and the
			// first trees come from an uninformed model — a cold EM start can
			// settle at the near-Poisson fixed point. Warm-starting from a
			// short L-HP fit (the paper's "parametric evaluation procedure
			// assists in identifying conformity") seeds the loop with credible
			// trees, kernels, and — crucially — a clean exogenous/endogenous
			// split: the linear model's μ is the exogenous rate, which
			// nonlinear links (whose μ is a log-rate that would otherwise
			// absorb the whole stream) inherit as ln(μ_linear).
			hpCfg := cfg
			hpCfg.Variant = VariantLHP
			hpCfg.EMIters = cfg.EMIters/3 + 2
			hpCfg.NoWarmStart = true
			hpCfg.TrackHistory = false
			// The pilot shares the metrics registry (its compensator work is part
			// of this fit) but not the observer: the observer contract promises
			// strictly increasing iteration numbers for *this* fit only. It also
			// never checkpoints — the outer fit's checkpoint subsumes it.
			hpCfg.observer = nil
			hpCfg.CheckpointDir = ""
			hpCfg.Resume = false
			hp, err := FitContext(ctx, seq, hpCfg)
			if err != nil {
				return nil, wrapCancel("warmstart", 0, err)
			}
			copy(m.Kernels, hp.Kernels)
			forest = hp.Forest
			// Pin μ to a band around the pilot's exogenous estimate (see the
			// muLo field comment).
			m.muLo = make([]float64, m.M)
			m.muHi = make([]float64, m.M)
			for i, mu := range hp.Mu {
				if linear {
					m.Mu[i] = mu
					m.muLo[i] = mu * 0.25
					m.muHi[i] = mu*cfg.MuBandHigh + 1e-6
				} else {
					lmu := math.Log(math.Max(mu, 1e-6))
					m.Mu[i] = lmu
					m.muLo[i] = lmu - 0.7
					m.muHi[i] = lmu + 0.7
				}
			}
		} else {
			forest, err = m.bootstrapForest(ctx, work)
			if err != nil {
				return nil, wrapCancel("bootstrap", 0, err)
			}
		}
		// Conformity variants draw their pair support from the diffusion trees:
		// those are the pairs with interaction history, hence nonzero
		// conformity. (Co-occurrence ranks fill the remaining slots.)
		if cfg.Variant.ConformityAware && forest != nil {
			src := seq
			if observed == nil {
				src = work
			}
			m.sources = forestSources(src, forest, m.sources)
			m.initParams(seq)
			if m.muLo != nil {
				// Re-initializing overwrote the pinned μ; restore the band
				// centers.
				for i := range m.Mu {
					m.Mu[i] = (m.muLo[i] + m.muHi[i]) / 2
				}
			}
		}
	}

	// Alternation schedule: conformity (and the diffusion trees beneath it)
	// is a *slow* variable — refreshing it every iteration couples two
	// stochastic fixed-point updates and oscillates. Instead the trees and
	// conformity snapshot are held fixed for a phase of M-step iterations
	// (parametric + nonparametric), then refreshed by one MAP E-step.
	refreshEvery := cfg.EMIters / 3
	if refreshEvery < 2 {
		refreshEvery = 2
	}
	if testRefreshEvery > 0 {
		refreshEvery = testRefreshEvery
	}
	var conf *conformity.Computer
	rebuildConf := func() error {
		if !cfg.Variant.ConformityAware {
			return nil
		}
		var err error
		conf, err = conformity.New(work, forest, cfg.Conformity)
		return err
	}
	if err := rebuildConf(); err != nil {
		return nil, err
	}
	guardOn := cfg.Guard.Enabled
	// The training LL is evaluated per iteration when the caller asked for
	// the history, an observer wants to report it, or the guard needs it for
	// regression checks — a pure computation either way, so neither
	// observing nor guarding a fit can change the fitted parameters.
	trackLL := cfg.TrackHistory || obsv != nil || guardOn
	eulerCounter := metrics.Counter("hawkes.euler_steps")

	// fail flushes the last captured checkpoint before an error exit, so a
	// cancelled (SIGTERM'd) or crashed-by-injection run leaves its most
	// recent completed iteration on disk for -resume.
	fail := func(err error) error {
		if ckpt != nil {
			ckpt.flush() // best-effort: the primary error wins
		}
		return err
	}

	// runIter executes one EM iteration attempt against the current state:
	// M-step, kernel update, (scheduled) E-step + conformity refresh, and
	// the training-LL evaluation, with the guard's health checks
	// interleaved. A non-nil violation means the attempt must be rolled
	// back; a non-nil error aborts the fit.
	runIter := func(iterNo int) (st obs.IterStats, vphase string, viol *guard.Violation, err error) {
		if obsv != nil {
			obsv.OnIterStart(iterNo)
		}
		iterStart := time.Now()
		st = obs.IterStats{Iter: iterNo}
		eulerBefore := eulerCounter.Value()
		defer func() {
			st.Seconds = time.Since(iterStart).Seconds()
			st.EulerSteps = eulerCounter.Value() - eulerBefore
		}()

		var ms *mstepStats
		if obsv != nil || guardOn {
			ms = &mstepStats{}
		}
		msStart := time.Now()
		if err = m.mStep(ctx, work, conf, ms); err != nil {
			err = wrapCancel("mstep", iterNo, err)
			return
		}
		msDur := time.Since(msStart)
		st.MStepSeconds = msDur.Seconds()
		metrics.Timer("core.mstep").Add(msDur)
		if !cfg.FixedKernel {
			kStart := time.Now()
			if err = m.updateKernels(ctx, work, conf); err != nil {
				err = wrapCancel("kernels", iterNo, err)
				return
			}
			kDur := time.Since(kStart)
			st.KernelSeconds = kDur.Seconds()
			metrics.Timer("core.kernels").Add(kDur)
		}
		if ms != nil && !math.IsNaN(ms.gradNorm) {
			st.GradNorm, st.GradNormValid = ms.gradNorm, true
		}
		if obsv != nil {
			obsv.OnMStep(obs.MStepStats{
				Iter: iterNo, Seconds: st.MStepSeconds,
				KernelSeconds: st.KernelSeconds,
				GradNorm:      st.GradNorm, GradNormValid: st.GradNormValid,
				Dims: ms.dims,
			})
		}
		if guardOn {
			if vphase, viol = m.healthCheck(&cfg.Guard, st); viol != nil {
				return
			}
		}
		if observed == nil && iterNo%refreshEvery == 0 && iterNo < cfg.EMIters {
			// Phase boundary: annealed E-step (sampled in the first half of
			// the run, MAP later; asynchronous against the previous forest),
			// then a fresh conformity snapshot.
			mapMode := cfg.MAPEStep || iterNo-1 >= cfg.EMIters/2
			var es *estepStats
			if obsv != nil {
				es = &estepStats{}
			}
			eStart := time.Now()
			forest, err = m.eStepMode(ctx, work, conf, mapMode, forest, es)
			if err != nil {
				err = wrapCancel("estep", iterNo, err)
				return
			}
			eDur := time.Since(eStart)
			st.EStepSeconds = eDur.Seconds()
			metrics.Timer("core.estep").Add(eDur)
			if obsv != nil {
				if !math.IsNaN(es.entropy) {
					st.Entropy, st.EntropyValid = es.entropy, true
				}
				obsv.OnEStep(obs.EStepStats{
					Iter: iterNo, Seconds: st.EStepSeconds,
					Entropy: st.Entropy, EntropyValid: st.EntropyValid,
					Events: es.events, MAP: mapMode,
				})
			}
			if err = rebuildConf(); err != nil {
				return
			}
		}
		m.Iterations = iterNo
		if trackLL {
			llOpts := m.compensatorOpts()
			llOpts.Ctx = ctx
			llStart := time.Now()
			var ll float64
			ll, err = m.processWith(conf).LogLikelihood(work, llOpts)
			if err != nil {
				err = wrapCancel("loglik", iterNo, err)
				return
			}
			llDur := time.Since(llStart)
			st.LLSeconds = llDur.Seconds()
			metrics.Timer("core.loglik").Add(llDur)
			st.TrainLL, st.TrainLLValid = ll, true
			if cfg.TrackHistory {
				m.History = append(m.History, ll)
			}
			if guardOn {
				if v := cfg.Guard.CheckLL(ll, lastHealthyLL, hasHealthyLL); v != nil {
					vphase, viol = "loglik", v
					return
				}
			}
		}
		return
	}

	for iter := startIter; iter < cfg.EMIters; iter++ {
		iterNo := iter + 1
		var snap *emSnapshot
		if guardOn {
			snap = m.snapshotState(forest)
		}
		for attempt := 0; ; attempt++ {
			m.curIter, m.curAttempt = iterNo, attempt
			st, vphase, viol, err := runIter(iterNo)
			if err != nil {
				return nil, fail(err)
			}
			if viol == nil {
				if st.TrainLLValid {
					lastHealthyLL, hasHealthyLL = st.TrainLL, true
				}
				if obsv != nil {
					obsv.OnIterEnd(st)
				}
				break
			}
			metrics.Counter("guard.violations").Inc()
			if attempt >= cfg.Guard.MaxRecoveries {
				// Budget exhausted. The model state was left mid-violation;
				// returning no model keeps non-finite Θ out of callers'
				// hands, and the flushed checkpoint holds the last healthy
				// iterate.
				return nil, fail(&guard.NumericalError{
					Phase: vphase, Iteration: iterNo,
					Quantity: viol.Quantity, Value: viol.Value,
					Recoveries: attempt, Reason: viol.Reason,
				})
			}
			// Bounded recovery: roll back to the pre-iteration state, shrink
			// the projected-gradient step, and retry the iteration.
			m.restoreState(snap)
			forest = snap.forest
			if err := rebuildConf(); err != nil {
				return nil, fail(err)
			}
			m.stepScale *= cfg.Guard.StepBackoff
			metrics.Counter("guard.recoveries").Inc()
			obs.NotifyRecovery(obsv, obs.RecoveryStats{
				Iter: iterNo, Attempt: attempt + 1,
				Phase: vphase, Quantity: viol.Quantity, Reason: viol.Reason,
				StepScale: m.stepScale,
			})
		}
		if ckpt != nil {
			if err := ckpt.capture(m, forest, iterNo, lastHealthyLL, hasHealthyLL); err != nil {
				return nil, err
			}
			if err := ckpt.maybeWrite(); err != nil {
				return nil, err
			}
		}
		// Only checkpointing fits consult the crash hook: the nested
		// warm-start pilot (which never checkpoints) would otherwise consume
		// the injected kill before the outer loop's iteration k is reached.
		if hook := faultinject.CrashAfterIter; hook != nil && ckpt != nil && hook(iterNo) {
			// Simulated kill: deliberately no flush — exactly like SIGKILL,
			// only checkpoints the stride already wrote survive.
			return nil, fmt.Errorf("core: after iteration %d: %w", iterNo, faultinject.ErrInjectedCrash)
		}
	}
	if ckpt != nil {
		// Completion checkpoint: a resume of a finished run replays only the
		// final readout below (which restores from this state), so it yields
		// the same model as the uninterrupted run.
		if err := ckpt.flush(); err != nil {
			return nil, err
		}
	}
	// Final tree readout under the converged parameters (observed trees
	// are kept verbatim).
	if observed == nil {
		forest, err = m.eStepMode(ctx, work, conf, true, nil, nil)
		if err != nil {
			return nil, wrapCancel("readout", 0, err)
		}
	}
	m.Forest = forest
	if cfg.Variant.ConformityAware {
		m.Conf, err = conformity.New(work, forest, cfg.Conformity)
		if err != nil {
			return nil, err
		}
	}
	if guardOn {
		// The guarded contract's last line of defense: a guarded fit never
		// hands out non-finite parameters, whatever path produced them.
		if phase, v := m.checkParamsFinite(); v != nil {
			return nil, &guard.NumericalError{
				Phase: phase, Iteration: m.Iterations,
				Quantity: v.Quantity, Value: v.Value, Reason: v.Reason,
			}
		}
	}
	return m, nil
}

// initKernels fills the kernel bank with the fit's initial kernels: a
// normalized exponential-plus-uniform mixture tabulated onto the support
// grid. The uniform floor matters: a purely recency-shaped initial kernel
// makes early E-steps attribute everything to the most recent candidate, and
// the nonparametric updates then reinforce that choice — the floor keeps
// slow triggering tails (replies to a cascade's root long after it was
// posted) representable from the start. Shared by the in-memory and sharded
// drivers; it reads only the resolved config.
func (m *Model) initKernels() error {
	initKer, err := kernel.NewExponential(m.cfg.InitKernelRate)
	if err != nil {
		return err
	}
	if m.cfg.ExpKernel {
		// Parametric mode: the exponential itself is the kernel for the
		// whole fit, kept as a kernel.Exponential value so the fitted
		// process qualifies for the exponential fast path end to end.
		for i := range m.Kernels {
			m.Kernels[i] = initKer
		}
		return nil
	}
	const taps = 24
	step := m.cfg.KernelSupport / float64(taps)
	vals := make([]float64, taps+1)
	for k := range vals {
		vals[k] = 0.7*initKer.Eval(float64(k)*step) + 0.3/m.cfg.KernelSupport
	}
	sampled, err := kernel.NewDiscrete(step, vals)
	if err != nil {
		return err
	}
	sampled.Normalize()
	for i := range m.Kernels {
		m.Kernels[i] = sampled
	}
	return nil
}

// initParams follows the paper's initialization: μ sampled from U[0, 0.01]
// (linear link; the exp link uses the log event rate so eᵘ starts at the
// right scale) and the coefficients {γᴵ, β, γᴺ} — or α for HP baselines —
// from U[0, 0.1], restricted to the active pair support. For linear links
// seq is only consulted lazily (the sharded driver passes nil: its corpus
// has no in-memory sequence, and the linear draws need none).
func (m *Model) initParams(seq *timeline.Sequence) {
	r := rng.New(m.cfg.Seed).Split(307)
	_, linear := m.link.(hawkes.LinearLink)
	var counts []int
	if !linear {
		counts = seq.CountByUser()
	}
	for i := 0; i < m.M; i++ {
		if linear {
			m.Mu[i] = r.Uniform(1e-4, 0.01)
		} else {
			rate := float64(counts[i])/seq.Horizon + 1e-4
			m.Mu[i] = math.Log(rate)
		}
		for _, j := range m.sources[i] {
			if !m.Variant.ConformityAware {
				m.Alpha[i][j] = r.Uniform(0, 0.1)
				continue
			}
			if m.Variant.UseInformational {
				m.GammaI[i][j] = r.Uniform(0, 0.1)
				m.Beta[i][j] = r.Uniform(0.05, 0.5)
			}
			if m.Variant.UseNormative {
				m.GammaN[i][j] = r.Uniform(0, 0.1)
			}
		}
	}
}

// medianGap returns the median gap between consecutive activities.
func medianGap(seq *timeline.Sequence) float64 {
	n := seq.Len()
	if n < 2 {
		return 0
	}
	gaps := make([]float64, 0, n-1)
	for k := 1; k < n; k++ {
		if g := seq.Activities[k].Time - seq.Activities[k-1].Time; g > 0 {
			gaps = append(gaps, g)
		}
	}
	if len(gaps) == 0 {
		return 0
	}
	sort.Float64s(gaps)
	return gaps[len(gaps)/2]
}

// supportHeuristic picks the triggering-kernel horizon from the inter-event
// gap distribution: max(15×q80, 20×median), capped at Horizon/10.
func supportHeuristic(seq *timeline.Sequence) float64 {
	times := make([]float64, seq.Len())
	for k := range seq.Activities {
		times[k] = seq.Activities[k].Time
	}
	return supportFromTimes(times, seq.Horizon)
}

// supportFromTimes is supportHeuristic over a bare timestamp column — the
// form both drivers share, so the sharded fit derives the identical support
// (and with it identical kernels) from a colstore corpus.
func supportFromTimes(times []float64, horizon float64) float64 {
	n := len(times)
	hi := horizon / 10
	if n < 2 {
		return hi
	}
	gaps := make([]float64, 0, n-1)
	for k := 1; k < n; k++ {
		if g := times[k] - times[k-1]; g > 0 {
			gaps = append(gaps, g)
		}
	}
	if len(gaps) == 0 {
		return hi
	}
	sort.Float64s(gaps)
	med := gaps[len(gaps)/2]
	q80 := gaps[len(gaps)*4/5]
	s := math.Max(15*q80, 20*med)
	if s <= 0 || s > hi {
		return hi
	}
	return s
}

// forestSources ranks, per receiver, the users whose activities actually
// parented the receiver's responses in the given forest — the pairs that
// carry conformity signal. Remaining slots (up to MaxSourcesPerDim) are
// filled from the temporal co-occurrence ranking so newly-forming pairs can
// still be picked up.
func forestSources(seq *timeline.Sequence, forest *branching.Forest, coocc [][]int) [][]int {
	users := make([]uint32, seq.Len())
	for k := range seq.Activities {
		users[k] = uint32(seq.Activities[k].User)
	}
	return forestSourcesFromCols(users, seq.M, forest, coocc)
}

// forestSourcesFromCols is forestSources over a bare user column — the form
// the sharded driver feeds straight from its flat columns. One ranking body
// for both drivers keeps the conformity pair support (and the initParams RNG
// consumption that follows it) bit-identical between them.
func forestSourcesFromCols(users []uint32, m int, forest *branching.Forest, coocc [][]int) [][]int {
	counts := make([]map[int]int, m)
	for i := range counts {
		counts[i] = make(map[int]int)
	}
	for k := range users {
		p := forest.Parent(k)
		if p == timeline.NoParent {
			continue
		}
		i := int(users[k])
		j := int(users[p])
		if i != j {
			counts[i][j]++
		}
	}
	out := make([][]int, m)
	for i := range out {
		type jc struct{ j, c int }
		var list []jc
		for j, c := range counts[i] {
			list = append(list, jc{j, c})
		}
		sort.Slice(list, func(a, b int) bool {
			if list[a].c != list[b].c {
				return list[a].c > list[b].c
			}
			return list[a].j < list[b].j
		})
		if len(list) > MaxSourcesPerDim {
			list = list[:MaxSourcesPerDim]
		}
		js := make([]int, 0, MaxSourcesPerDim)
		seen := make(map[int]bool, MaxSourcesPerDim)
		for _, e := range list {
			js = append(js, e.j)
			seen[e.j] = true
		}
		for _, j := range coocc[i] {
			if len(js) >= MaxSourcesPerDim {
				break
			}
			if !seen[j] {
				js = append(js, j)
				seen[j] = true
			}
		}
		sort.Ints(js)
		out[i] = js
	}
	return out
}

// cooccurrenceSources finds, per receiver i, the source users whose events
// most often precede i's events within the kernel support — the sparse
// support the M-step optimizes over.
func cooccurrenceSources(seq *timeline.Sequence, support float64) [][]int {
	times := make([]float64, seq.Len())
	users := make([]uint32, seq.Len())
	for k := range seq.Activities {
		times[k] = seq.Activities[k].Time
		users[k] = uint32(seq.Activities[k].User)
	}
	return cooccurrenceFromCols(times, users, seq.M, support)
}

// cooccurrenceFromCols is cooccurrenceSources over bare (time, user)
// columns, the form the sharded driver feeds straight from a colstore scan.
// One body for both drivers means one ranking — the pair support, and
// therefore the initParams RNG consumption, cannot diverge between them.
func cooccurrenceFromCols(times []float64, users []uint32, m int, support float64) [][]int {
	counts := make([]map[int]int, m)
	for i := range counts {
		counts[i] = make(map[int]int)
	}
	lo := 0
	for k := range times {
		i := int(users[k])
		t := times[k]
		for lo < len(times) && times[lo] < t-support {
			lo++
		}
		for w := lo; w < k; w++ {
			j := int(users[w])
			if j != i {
				counts[i][j]++
			}
		}
	}
	out := make([][]int, m)
	for i := range out {
		type jc struct{ j, c int }
		var list []jc
		for j, c := range counts[i] {
			if c >= 2 {
				list = append(list, jc{j, c})
			}
		}
		sort.Slice(list, func(a, b int) bool {
			if list[a].c != list[b].c {
				return list[a].c > list[b].c
			}
			return list[a].j < list[b].j
		})
		if len(list) > MaxSourcesPerDim {
			list = list[:MaxSourcesPerDim]
		}
		js := make([]int, len(list))
		for idx, e := range list {
			js[idx] = e.j
		}
		sort.Ints(js)
		out[i] = js
	}
	return out
}

// HeldOutLogLikelihood evaluates the fitted model on a held-out sequence:
// ln L(X_test | Θ_train, H_train) of the Model Fitness experiment. Test
// activities keep their absolute times (timeline.Split preserves them), so
// the training history legitimately excites the test window: the combined
// train+test stream is re-assembled, its diffusion trees are inferred with
// the trained parameters, conformity is recomputed on those trees, and
// Eq. 7.1 is evaluated over the test window only, conditioned on everything
// before it.
func (m *Model) HeldOutLogLikelihood(test *timeline.Sequence) (float64, error) {
	if test == nil || test.Len() == 0 {
		return 0, errors.New("core: empty test sequence")
	}
	if test.M != m.M {
		return 0, fmt.Errorf("core: test sequence has %d dimensions, model has %d", test.M, m.M)
	}
	if m.seq == nil {
		return 0, errors.New("core: model carries no training sequence (sharded fits keep the corpus on disk)")
	}
	var combined *timeline.Sequence
	if m.cfg.UseObservedTrees {
		// Connectivity-aware setting: the platform exposes parent links at
		// evaluation time too.
		combined = timeline.Merge(m.M, m.seq, test)
	} else {
		combined = timeline.Merge(m.M, m.seq.StripParents(), test.StripParents())
	}
	from := m.seq.Horizon // end of the training window
	to := combined.Horizon
	if to <= from {
		to = combined.Activities[combined.Len()-1].Time + 1e-9
		combined.Horizon = to
	}
	var conf *conformity.Computer
	if m.Variant.ConformityAware {
		var forest *branching.Forest
		var err error
		if m.cfg.UseObservedTrees {
			forest, err = branching.FromSequence(combined)
		} else {
			forest, err = m.InferForest(combined)
		}
		if err != nil {
			return 0, err
		}
		conf, err = conformity.New(combined, forest, m.cfg.Conformity)
		if err != nil {
			return 0, err
		}
	}
	return m.processWith(conf).LogLikelihoodWindow(combined, from, to, m.compensatorOpts())
}

// InferredForest returns the branching structure the final E-step assigned
// to the training sequence.
func (m *Model) InferredForest() *branching.Forest { return m.Forest }
