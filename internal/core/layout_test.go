package core

import (
	"testing"
	"testing/quick"

	"chassis/internal/kernel"
	"chassis/internal/rng"
)

// layoutModel builds a bare model with random per-pair parameters over a
// random sparse source support, for pack/unpack round-trip checks.
func layoutModel(seed int64, v Variant) *Model {
	r := rng.New(seed)
	m := 4 + r.Intn(4)
	link, _ := v.Link()
	k, _ := kernel.NewExponential(1)
	mod := &Model{
		M: m, Variant: v, Horizon: 100,
		Mu:     make([]float64, m),
		GammaI: dense(m), GammaN: dense(m), Beta: dense(m), Alpha: dense(m),
		Kernels: make([]kernel.Kernel, m),
		link:    link,
	}
	for i := range mod.Kernels {
		mod.Kernels[i] = k
	}
	mod.sources = make([][]int, m)
	for i := 0; i < m; i++ {
		mod.Mu[i] = r.Uniform(0.001, 0.1)
		for j := 0; j < m; j++ {
			if i != j && r.Bernoulli(0.5) {
				mod.sources[i] = append(mod.sources[i], j)
				mod.GammaI[i][j] = r.Uniform(0, 2)
				mod.GammaN[i][j] = r.Uniform(0, 2)
				mod.Beta[i][j] = r.Uniform(0.01, 5)
				mod.Alpha[i][j] = r.Uniform(0, 2)
			}
		}
	}
	return mod
}

// Property: unpack(pack(m)) is the identity on the active support for every
// variant layout, and bounds always bracket the packed vector's shape.
func TestPackUnpackRoundTripProperty(t *testing.T) {
	variants := []Variant{VariantL, VariantE, VariantLI, VariantLN, VariantEI, VariantEN, VariantLHP, VariantEHP}
	f := func(seed int64, vIdx uint8) bool {
		v := variants[int(vIdx)%len(variants)]
		m := layoutModel(seed, v)
		for i := 0; i < m.M; i++ {
			x := m.pack(i)
			lower, upper := m.bounds(i)
			if len(lower) != len(x) || len(upper) != len(x) {
				return false
			}
			// Perturb, write back, re-read.
			for p := range x {
				x[p] += 0.001
			}
			m.unpack(i, x)
			y := m.pack(i)
			for p := range x {
				if x[p] != y[p] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLayoutIndicesDisjoint(t *testing.T) {
	for _, v := range []Variant{VariantL, VariantLI, VariantLN, VariantLHP} {
		m := layoutModel(3, v)
		l := m.layout()
		seen := map[int]bool{0: true} // μ slot
		nSrc := 3
		for s := 0; s < nSrc; s++ {
			var idxs []int
			if !l.conformityAware {
				idxs = []int{l.alphaIdx(s)}
			} else {
				if l.useInformational {
					idxs = append(idxs, l.gammaIIdx(s), l.betaIdx(s))
				}
				if l.useNormative {
					idxs = append(idxs, l.gammaNIdx(s))
				}
			}
			for _, idx := range idxs {
				if seen[idx] {
					t.Fatalf("%s: slot %d reused", v.Name(), idx)
				}
				seen[idx] = true
			}
		}
		// Slots are dense: 1 + nSrc·perSrc of them.
		if len(seen) != 1+nSrc*l.perSrc {
			t.Fatalf("%s: %d slots for perSrc=%d", v.Name(), len(seen), l.perSrc)
		}
	}
}
