package core

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chassis/internal/checkpoint"
	"chassis/internal/timeline"
)

func TestModelSaveLoadRoundTrip(t *testing.T) {
	d := smallDataset(t, 61)
	cfg := quickCfg(VariantL)
	cfg.UseObservedTrees = true
	m, err := Fit(d.Seq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadModel(&buf, d.Seq)
	if err != nil {
		t.Fatal(err)
	}
	// Parameters survive exactly.
	for i := 0; i < m.M; i++ {
		if back.Mu[i] != m.Mu[i] {
			t.Fatalf("Mu[%d] changed: %g vs %g", i, back.Mu[i], m.Mu[i])
		}
		for j := 0; j < m.M; j++ {
			if back.GammaI[i][j] != m.GammaI[i][j] || back.GammaN[i][j] != m.GammaN[i][j] {
				t.Fatalf("gamma changed at (%d,%d)", i, j)
			}
		}
	}
	// Derived quantities reproduce.
	llA, err := m.TrainLogLikelihood()
	if err != nil {
		t.Fatal(err)
	}
	llB, err := back.TrainLogLikelihood()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(llA-llB) > 1e-6*math.Abs(llA) {
		t.Errorf("train LL changed: %g vs %g", llA, llB)
	}
	infA, infB := m.EstimatedInfluence(), back.EstimatedInfluence()
	for i := range infA {
		for j := range infA[i] {
			if math.Abs(infA[i][j]-infB[i][j]) > 1e-9 {
				t.Fatalf("influence changed at (%d,%d): %g vs %g", i, j, infA[i][j], infB[i][j])
			}
		}
	}
}

func TestModelSaveLoadHPVariant(t *testing.T) {
	d := smallDataset(t, 62)
	m, err := Fit(d.Seq, quickCfg(VariantLHP))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadModel(&buf, d.Seq)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.M; i++ {
		for j := 0; j < m.M; j++ {
			if back.Alpha[i][j] != m.Alpha[i][j] {
				t.Fatalf("alpha changed at (%d,%d)", i, j)
			}
		}
	}
}

func TestLoadModelValidation(t *testing.T) {
	d := smallDataset(t, 63)
	m, err := Fit(d.Seq, quickCfg(VariantLHP))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	saved := buf.String()
	if _, err := LoadModel(strings.NewReader("not json"), d.Seq); err == nil {
		t.Error("garbage must fail")
	}
	if _, err := LoadModel(strings.NewReader(saved), nil); err == nil {
		t.Error("nil sequence must fail")
	}
	wrong := &timeline.Sequence{M: d.Seq.M, Horizon: 5}
	if _, err := LoadModel(strings.NewReader(saved), wrong); err == nil {
		t.Error("mismatched sequence length must fail")
	}
}

// goldenModel reproduces the fit the committed model_v1 fixture was written
// from (fully seeded, so bit-reproducible).
func goldenModel(t *testing.T) *Model {
	t.Helper()
	d := smallDataset(t, 61)
	cfg := quickCfg(VariantL)
	cfg.UseObservedTrees = true
	m, err := Fit(d.Seq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestModelGoldenV1 pins the version-1 model wire format with a committed
// fixture: today's reader must keep loading it, and a load→save round trip
// must reproduce it byte-for-byte (Go's shortest-float JSON encoding makes
// every float64 round-trip bit-exact).
func TestModelGoldenV1(t *testing.T) {
	d := smallDataset(t, 61)
	path := filepath.Join("testdata", "model_v1.golden.json")
	if *updateGolden {
		var buf bytes.Buffer
		if err := goldenModel(t).Save(&buf); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing fixture (regenerate with -update): %v", err)
	}
	m, err := LoadModel(bytes.NewReader(blob), d.Seq)
	if err != nil {
		t.Fatalf("v1 fixture no longer loads: %v", err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), blob) {
		t.Error("load→save no longer reproduces the v1 fixture byte-for-byte")
	}
	// The fixture's parameters still drive a likelihood evaluation.
	if ll, err := m.TrainLogLikelihood(); err != nil || math.IsNaN(ll) {
		t.Errorf("fixture model unusable: ll=%v err=%v", ll, err)
	}
}

// TestLoadModelFutureVersion: a file stamped by a newer writer fails with
// the shared typed error instead of being silently misread.
func TestLoadModelFutureVersion(t *testing.T) {
	d := smallDataset(t, 61)
	m := goldenModel(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	future := strings.Replace(buf.String(), `{"version":1,`, `{"version":99,`, 1)
	if future == buf.String() {
		t.Fatal("could not stamp a future version into the fixture")
	}
	_, err := LoadModel(strings.NewReader(future), d.Seq)
	var ve *checkpoint.VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("got %v, want *checkpoint.VersionError", err)
	}
	if ve.Got != 99 || ve.Supported != modelFormatVersion {
		t.Errorf("VersionError = %+v, want Got=99 Supported=%d", ve, modelFormatVersion)
	}
}

// TestLoadModelVersionZero: files written before versioning decode with an
// implicit version 0 and stay loadable.
func TestLoadModelVersionZero(t *testing.T) {
	d := smallDataset(t, 61)
	m := goldenModel(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	legacy := strings.Replace(buf.String(), `{"version":1,`, `{`, 1)
	if _, err := LoadModel(strings.NewReader(legacy), d.Seq); err != nil {
		t.Fatalf("pre-versioning file must stay loadable: %v", err)
	}
}
