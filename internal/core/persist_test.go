package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"chassis/internal/timeline"
)

func TestModelSaveLoadRoundTrip(t *testing.T) {
	d := smallDataset(t, 61)
	cfg := quickCfg(VariantL)
	cfg.UseObservedTrees = true
	m, err := Fit(d.Seq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadModel(&buf, d.Seq)
	if err != nil {
		t.Fatal(err)
	}
	// Parameters survive exactly.
	for i := 0; i < m.M; i++ {
		if back.Mu[i] != m.Mu[i] {
			t.Fatalf("Mu[%d] changed: %g vs %g", i, back.Mu[i], m.Mu[i])
		}
		for j := 0; j < m.M; j++ {
			if back.GammaI[i][j] != m.GammaI[i][j] || back.GammaN[i][j] != m.GammaN[i][j] {
				t.Fatalf("gamma changed at (%d,%d)", i, j)
			}
		}
	}
	// Derived quantities reproduce.
	llA, err := m.TrainLogLikelihood()
	if err != nil {
		t.Fatal(err)
	}
	llB, err := back.TrainLogLikelihood()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(llA-llB) > 1e-6*math.Abs(llA) {
		t.Errorf("train LL changed: %g vs %g", llA, llB)
	}
	infA, infB := m.EstimatedInfluence(), back.EstimatedInfluence()
	for i := range infA {
		for j := range infA[i] {
			if math.Abs(infA[i][j]-infB[i][j]) > 1e-9 {
				t.Fatalf("influence changed at (%d,%d): %g vs %g", i, j, infA[i][j], infB[i][j])
			}
		}
	}
}

func TestModelSaveLoadHPVariant(t *testing.T) {
	d := smallDataset(t, 62)
	m, err := Fit(d.Seq, quickCfg(VariantLHP))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadModel(&buf, d.Seq)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.M; i++ {
		for j := 0; j < m.M; j++ {
			if back.Alpha[i][j] != m.Alpha[i][j] {
				t.Fatalf("alpha changed at (%d,%d)", i, j)
			}
		}
	}
}

func TestLoadModelValidation(t *testing.T) {
	d := smallDataset(t, 63)
	m, err := Fit(d.Seq, quickCfg(VariantLHP))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	saved := buf.String()
	if _, err := LoadModel(strings.NewReader("not json"), d.Seq); err == nil {
		t.Error("garbage must fail")
	}
	if _, err := LoadModel(strings.NewReader(saved), nil); err == nil {
		t.Error("nil sequence must fail")
	}
	wrong := &timeline.Sequence{M: d.Seq.M, Horizon: 5}
	if _, err := LoadModel(strings.NewReader(saved), wrong); err == nil {
		t.Error("mismatched sequence length must fail")
	}
}
