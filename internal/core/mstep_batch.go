package core

import (
	"context"

	"chassis/internal/conformity"
	"chassis/internal/kernel"
	"chassis/internal/parallel"
	"chassis/internal/timeline"
)

// mstepBatchDims caps how many dimensions one batched M-step pass assembles
// at a time. Each batch costs one chronological scan of the event stream plus
// O(sources-in-batch) working memory, so the batch size trades scan count
// against peak memory. (A variable only so tests can shrink it and force
// multi-batch execution on small fixtures.)
var mstepBatchDims = 2048

// mstepBatchSrcEvents bounds the summed source-event footprint of one batch:
// a dimension's working set is one srcEvent (32 bytes) per event of each of
// its source users, and because the co-occurrence ranking picks the MOST
// ACTIVE users as sources, the same hub users' event lists are duplicated
// into nearly every dimension of a batch — on a hub-heavy corpus a fixed
// 2048-dim batch can hold gigabytes while the dim cap alone predicts
// megabytes. Packing batches against this budget (computed from exact
// per-user event counts, one cheap extra scan) keeps the peak near
// 32B * budget regardless of how skewed the activity distribution is.
// Batch boundaries never change results — each dimension's data is
// assembled and optimized independently (TestBatchBuilderMatchesPerDim and
// the batch-span sweep in TestBatchedMStepMatchesPerDimOptimizer) — so this
// is purely a memory knob. (A variable only so tests can exercise packing.)
var mstepBatchSrcEvents = int64(4 << 20)

// eventSource is the event stream a batched M-step scans: chronological
// (time, user) pairs, re-scannable once per dimension batch. The in-memory
// fit wraps the training sequence; the sharded fit wraps a colstore reader,
// which is the whole point — the M-step only ever needs one pass of times
// and users, never the corpus in memory.
type eventSource interface {
	horizon() float64
	scan(fn func(t float64, user int)) error
}

// memEvents adapts an in-memory sequence to eventSource.
type memEvents struct{ seq *timeline.Sequence }

func (s memEvents) horizon() float64 { return s.seq.Horizon }

func (s memEvents) scan(fn func(t float64, user int)) error {
	for k := range s.seq.Activities {
		a := &s.seq.Activities[k]
		fn(a.Time, int(a.User))
	}
	return nil
}

// dimSrcRef marks that user j is a source for one batch slot.
type dimSrcRef struct {
	slot int32 // index into the batch's slot array
	jIdx int32 // index into sources[slot's dim]
}

// slotState is one dimension's accumulation state during a batch scan.
type slotState struct {
	d       *dimData
	ker     kernel.Kernel
	support float64
	start   int // prune cursor into d.src: first source inside the support window
}

// batchScratch holds the per-user indexes buildDimDataBatch needs, reused
// across batches so an M-step allocates them once. Entries are reset to
// their empty state after every batch.
type batchScratch struct {
	slotOf  []int32     // user -> batch slot, -1 outside the batch
	srcRefs [][]dimSrcRef // user -> slots listing it as a source
}

func newBatchScratch(m int) *batchScratch {
	s := &batchScratch{slotOf: make([]int32, m), srcRefs: make([][]dimSrcRef, m)}
	for i := range s.slotOf {
		s.slotOf[i] = -1
	}
	return s
}

// buildDimDataBatch assembles dimData for dimensions [lo, hi) with ONE
// chronological scan of the event stream. The result is element-wise
// identical to calling buildDimData per dimension (same source events, same
// window entries, same kernel evaluations in the same order —
// TestBatchBuilderMatchesPerDim pins this), so the optimizer sees the same
// floats regardless of which builder ran.
//
// Per-slot source deques never rescan: a target window is d.src[start:] with
// start advanced by the same `time < t − support` rule the per-dim builder
// prunes with; since scan times are nondecreasing, pruned sources stay
// prunable. Grid windows (nonlinear links) are out of scope — nonlinear fits
// keep the per-dim builder.
func (m *Model) buildDimDataBatch(src eventSource, conf *conformity.Computer, lo, hi int, scr *batchScratch) ([]*dimData, error) {
	if scr == nil {
		scr = newBatchScratch(m.M)
	}
	l := m.layout()
	needAN := l.conformityAware && l.useNormative
	T := src.horizon()
	slots := make([]*slotState, hi-lo)
	for i := lo; i < hi; i++ {
		s := int32(i - lo)
		scr.slotOf[i] = s
		slots[s] = &slotState{
			d:       &dimData{i: i, T: T},
			ker:     m.Kernels[i],
			support: m.Kernels[i].Support(),
		}
		for idx, j := range m.sources[i] {
			scr.srcRefs[j] = append(scr.srcRefs[j], dimSrcRef{slot: s, jIdx: int32(idx)})
		}
	}

	err := src.scan(func(t float64, j int) {
		// Target window first: the per-dim builder only admits sources
		// strictly before the target event, so an event that is both a
		// target and a source contributes to later windows only.
		if s := scr.slotOf[j]; s >= 0 {
			st := slots[s]
			sv := st.d.src
			for st.start < len(sv) && sv[st.start].t < t-st.support {
				st.start++
			}
			var win []winEntry
			for e := st.start; e < len(sv); e++ {
				dt := t - sv[e].t
				if dt <= 0 {
					continue
				}
				if phi := st.ker.Eval(dt); phi > 0 {
					win = append(win, winEntry{src: int32(e), phi: phi})
				}
			}
			st.d.targets = append(st.d.targets, win)
		}
		for _, ref := range scr.srcRefs[j] {
			st := slots[ref.slot]
			e := srcEvent{
				j: int32(j), jIdx: ref.jIdx, t: t,
				kInt: st.ker.Integral(T - t),
			}
			if needAN {
				e.aN = conf.Normative(st.d.i, j, t)
			}
			st.d.src = append(st.d.src, e)
		}
	})
	// Reset the shared per-user indexes before handling errors so a failed
	// batch leaves the scratch clean for the next one.
	for i := lo; i < hi; i++ {
		scr.slotOf[i] = -1
		for _, j := range m.sources[i] {
			scr.srcRefs[j] = scr.srcRefs[j][:0]
		}
	}
	if err != nil {
		return nil, err
	}
	out := make([]*dimData, hi-lo)
	for s := range slots {
		out[s] = slots[s].d
	}
	return out, nil
}

// mStepBatches is the linear-link M-step: dimensions are processed in fixed
// batches, each assembled by one scan via buildDimDataBatch, then optimized
// in parallel. Batches run sequentially, so peak memory is one batch of
// dimData — the property the out-of-core sharded fit relies on — while the
// per-dimension optimization stays deterministic at any worker count or
// batch size.
func (m *Model) mStepBatches(ctx context.Context, src eventSource, conf *conformity.Computer, initStep float64, norms []float64) error {
	scr := newBatchScratch(m.M)
	workers := parallel.Workers(m.cfg.Workers)
	cost, err := m.dimSrcCosts(src)
	if err != nil {
		return err
	}
	for lo := 0; lo < m.M; {
		hi := lo + 1
		budget := cost[lo]
		for hi < m.M && hi-lo < mstepBatchDims && budget+cost[hi] <= mstepBatchSrcEvents {
			budget += cost[hi]
			hi++
		}
		data, err := m.buildDimDataBatch(src, conf, lo, hi, scr)
		if err != nil {
			return err
		}
		err = parallel.DoContext(ctx, workers, hi-lo, func(bi int) error {
			i := lo + bi
			norm := m.optimizeDim(i, data[bi], conf, initStep, norms != nil)
			if norms != nil {
				norms[i] = norm
			}
			return nil
		})
		if err != nil {
			return err
		}
		lo = hi
	}
	return nil
}

// dimSrcCosts counts, per dimension, how many source events its batch slot
// will hold: the summed event counts of its source users (plus one so an
// empty dimension still has positive cost and the packing loop advances).
// One flat counting scan of the stream; exact, not an estimate.
func (m *Model) dimSrcCosts(src eventSource) ([]int64, error) {
	perUser := make([]int64, m.M)
	if err := src.scan(func(_ float64, j int) { perUser[j]++ }); err != nil {
		return nil, err
	}
	cost := make([]int64, m.M)
	for i := range cost {
		c := int64(1)
		for _, j := range m.sources[i] {
			c += perUser[j]
		}
		cost[i] = c
	}
	return cost, nil
}
