// Package core implements CHASSIS itself: the conformity-aware Hawkes
// information-diffusion model of Eq. 4.2 and its semi-parametric EM
// inference (Sections 6–7 of the paper).
//
// One EM iteration alternates:
//
//   - E-step (Section 6): infer the latent branching structure — each
//     activity's triggering parent — from Papangelou-style intensity drops:
//     the probability that a preceding activity parents a_{ik} is
//     proportional to how much removing it would lower λᵢ(t_{ik}), which
//     works for linear and nonlinear links alike.
//   - M-step, parametric (Section 7): maximize the per-dimension
//     log-likelihood (Eq. 7.1) over Θ = {μᵢ, βᵢⱼ, γᴵᵢⱼ, γᴺᵢⱼ} by projected
//     gradient ascent, with conformity quantities recomputed from the
//     freshly inferred diffusion trees.
//   - M-step, nonparametric (Section 7): re-estimate the triggering
//     kernels in the frequency domain (Eqs. 7.5–7.8) from the binned
//     counting processes.
//
// The same machinery with the conformity terms replaced by free excitation
// coefficients gives the paper's L-HP and E-HP baselines; disabling one of
// the two conformity flavors gives the -LI/-LN/-EI/-EN ablations.
package core

import (
	"errors"
	"fmt"

	"chassis/internal/branching"
	"chassis/internal/conformity"
	"chassis/internal/guard"
	"chassis/internal/hawkes"
	"chassis/internal/kernel"
	"chassis/internal/obs"
	"chassis/internal/timeline"
)

// Variant selects a model family from the paper's experiment grid.
type Variant struct {
	// LinkName is "linear" or "exp" (Fᵢ in Eq. 4.2).
	LinkName string
	// ConformityAware selects the CHASSIS excitation (Eq. 4.1); false
	// learns free αᵢⱼ coefficients (the L-HP / E-HP baselines).
	ConformityAware bool
	// UseInformational / UseNormative toggle the two conformity flavors
	// (both on for full CHASSIS; one off for the ablations).
	UseInformational bool
	UseNormative     bool
}

// The paper's strategy grid.
var (
	VariantL   = Variant{LinkName: "linear", ConformityAware: true, UseInformational: true, UseNormative: true}
	VariantE   = Variant{LinkName: "exp", ConformityAware: true, UseInformational: true, UseNormative: true}
	VariantLI  = Variant{LinkName: "linear", ConformityAware: true, UseInformational: true}
	VariantLN  = Variant{LinkName: "linear", ConformityAware: true, UseNormative: true}
	VariantEI  = Variant{LinkName: "exp", ConformityAware: true, UseInformational: true}
	VariantEN  = Variant{LinkName: "exp", ConformityAware: true, UseNormative: true}
	VariantLHP = Variant{LinkName: "linear"}
	VariantEHP = Variant{LinkName: "exp"}
)

// Name returns the paper's label for the variant.
func (v Variant) Name() string {
	suffix := ""
	switch {
	case v.ConformityAware && v.UseInformational && v.UseNormative:
		suffix = ""
	case v.ConformityAware && v.UseInformational:
		suffix = "I"
	case v.ConformityAware && v.UseNormative:
		suffix = "N"
	}
	switch v.LinkName {
	case "exp":
		if v.ConformityAware {
			return "CHASSIS-E" + suffix
		}
		return "E-HP"
	default:
		if v.ConformityAware {
			return "CHASSIS-L" + suffix
		}
		return "L-HP"
	}
}

// Link resolves the link function.
func (v Variant) Link() (hawkes.Link, error) {
	return hawkes.LinkByName(v.LinkName)
}

func (v Variant) validate() error {
	if _, err := v.Link(); err != nil {
		return err
	}
	if v.ConformityAware && !v.UseInformational && !v.UseNormative {
		return errors.New("core: conformity-aware variant needs at least one conformity flavor")
	}
	return nil
}

// FastPathMode selects the intensity engine used by every hawkes-process
// evaluation the model performs (likelihoods, compensators, Monte-Carlo
// prediction).
type FastPathMode int

const (
	// FastPathAuto — the default — uses the fast engine whenever the kernel
	// bank allows it: the O(n) recursive sweep for exponential banks, the
	// per-sequence kernel-evaluation cache for power-law/Rayleigh banks.
	// Both are exact-or-better than the naive scan (bit-identical for the
	// cache, within 1e−9 relative for the recursion; see DESIGN.md §11).
	FastPathAuto FastPathMode = iota
	// FastPathOff forces the naive reference scans everywhere — the oracle
	// configuration the property tests and ablations compare against.
	FastPathOff
)

// Config tunes the EM fit.
type Config struct {
	Variant Variant
	// EMIters is the number of outer EM iterations (default 12).
	EMIters int
	// MStepIters caps gradient steps per dimension per M-step (default 25).
	MStepIters int
	// KernelBins is the nonparametric kernel grid size (default 24).
	KernelBins int
	// KernelSupport is the triggering-kernel horizon; 0 auto-selects
	// Horizon/20.
	KernelSupport float64
	// InitKernelRate seeds the exponential kernel used before the first
	// nonparametric update (default 5/KernelSupport).
	InitKernelRate float64
	// IntegrationGrid is the Euler grid size for nonlinear-link
	// compensators (default 192; Theorem 7.1 refinement happens inside the
	// final likelihood evaluation, the fit uses a fixed grid for speed).
	IntegrationGrid int
	// Seed drives initialization and E-step sampling.
	Seed int64
	// Workers caps the goroutines used by the parallel E-step, the
	// per-dimension M-step and kernel updates, and likelihood/compensator
	// evaluations. 0 (the default) uses runtime.GOMAXPROCS. Fitted
	// parameters and inferred forests are bit-identical at every setting:
	// work is sharded into chunks whose boundaries and RNG streams depend
	// only on the data, never on the worker count (see internal/parallel).
	Workers int
	// MAPEStep takes the argmax of the triggering distribution instead of
	// sampling from it. The default (sampling) matches the paper — parents
	// are "obtained probabilistically" — and avoids the argmax's bias
	// toward the immigrant label when many small candidate weights jointly
	// outweigh μ but individually do not.
	MAPEStep bool
	// FixedKernel skips the nonparametric kernel updates (ablation; the
	// initial exponential kernel is kept).
	FixedKernel bool
	// ExpKernel fits with a parametric exponential triggering kernel
	// (rate InitKernelRate) instead of the nonparametric grid, implying
	// FixedKernel. The fitted model then carries kernel.Exponential values,
	// so its Process serves the O(n) exponential fast path — simulation,
	// prediction, and the serve layer's cached continuation state — which
	// the tabulated kernels of a nonparametric fit cannot. (omitempty keeps
	// pre-existing model files byte-stable: false — every file written
	// before the flag existed — serializes to nothing.)
	ExpKernel bool `json:"ExpKernel,omitempty"`
	// KernelDamping blends new kernel estimates with the previous one for
	// EM stability: new = damping·old + (1−damping)·estimate (default 0.5).
	KernelDamping float64
	// ParamDamping blends each M-step's parameter update with the previous
	// values the same way (default 0.5). The E-step samples trees, so the
	// M-step targets move stochastically; damping turns the alternation
	// into a stable stochastic-approximation scheme.
	ParamDamping float64
	// NoWarmStart disables the HP warm start that conformity-aware fits
	// use to seed their first diffusion trees (ablation knob).
	NoWarmStart bool
	// LinearRatioEStep scores E-step candidates by their raw pre-link
	// contribution c_e (the classical linear-Hawkes triggering ratio)
	// instead of the Papangelou drop F(g) − F(g − c_e). The two coincide
	// under the linear link; the ablation quantifies the gap for nonlinear
	// links.
	LinearRatioEStep bool
	// EStepSmoothing is added to every candidate's excitation when scoring
	// triggering links (default 0.02). Conformity quantities are exactly
	// zero until a pair has accumulated ≥2 interactions, so an unsmoothed
	// E-step could never attach the first links and EM would collapse to
	// the all-immigrant fixed point; the smoothing acts as the Laplace
	// prior that lets temporal proximity seed the first diffusion trees.
	EStepSmoothing float64
	// MuBandHigh sets the upper μ band multiplier applied after a warm
	// start (default 2.5; see the Model.muLo field comment).
	MuBandHigh float64
	// UseObservedTrees switches to the paper's "connectivity-aware
	// construction" (Section 6): when the platform exposes parent links —
	// as the paper's Facebook/Twitter crawls do — the diffusion trees are
	// read from the data and the E-step is skipped; inference is only
	// needed when connectivity is hidden (the Table 1 setting).
	UseObservedTrees bool
	// FastPath selects the hawkes intensity engine (default FastPathAuto:
	// fast engine on wherever the kernel bank allows). The fit itself runs
	// on nonparametric Discrete kernels, which neither fast path touches, so
	// fitted parameters are identical in every mode; the switch matters for
	// likelihood evaluations and serve-time prediction on parametric banks.
	// omitempty keeps the default out of persisted configs, so the v1 model
	// wire format is byte-stable.
	FastPath FastPathMode `json:"fast_path,omitempty"`
	// Conformity forwards extraction options.
	Conformity conformity.Options
	// TrackHistory records the training log-likelihood after every EM
	// iteration (the convergence experiment).
	TrackHistory bool
	// Guard configures the numerical guardrails: per-iteration health
	// checks with bounded rollback-and-retry recovery (see internal/guard).
	// The zero value disables them; a guarded fit that never trips a check
	// is bit-identical to an unguarded one.
	Guard guard.Policy
	// CheckpointDir, when non-empty, makes the fit write an atomic
	// checkpoint of its full EM state into this directory every
	// CheckpointEvery iterations (and at the loop's exits), so a killed fit
	// can continue. Excluded from persisted configs: where a run
	// checkpoints is an operational choice, not part of the model.
	CheckpointDir string `json:"-"`
	// CheckpointEvery is the iteration stride between checkpoint writes
	// (default 1 — every completed iteration).
	CheckpointEvery int `json:"-"`
	// Resume makes the fit continue from the checkpoint in CheckpointDir
	// when one exists (a missing checkpoint is a fresh start, not an
	// error). The resumed run is bit-identical to an uninterrupted one at
	// any worker count: every RNG stream is a pure function of (Seed,
	// counters captured in the checkpoint).
	Resume bool `json:"-"`
	// ShardEvents caps how many events FitSharded materializes as activity
	// structs at once: each E-step/bootstrap pass walks the corpus in shards
	// of at least this many events (rounded up to whole scheduling chunks)
	// plus one kernel support of halo. Like Workers it is an operational
	// knob that never affects the fitted parameters or forest — shard
	// boundaries change which buffer the chunk bodies read through, never
	// which floats they compute — so it is excluded from config
	// fingerprints, and a checkpointed run may resume under a different
	// value. 0 selects the default (256k events). Ignored by the in-memory
	// drivers.
	ShardEvents int `json:"-"`

	// observer/metrics are the observability hooks, settable only through
	// FitContext's Options (WithObserver/WithMetrics). Unexported on
	// purpose: the exported Config surface — and the zero value every
	// existing caller constructs — is unchanged by the observability layer.
	observer obs.FitObserver
	metrics  *obs.Metrics
}

func (c *Config) fill() error {
	if err := c.Variant.validate(); err != nil {
		return err
	}
	if c.EMIters <= 0 {
		c.EMIters = 12
	}
	if c.MStepIters <= 0 {
		c.MStepIters = 25
	}
	if c.KernelBins <= 0 {
		c.KernelBins = 24
	}
	if c.IntegrationGrid <= 0 {
		c.IntegrationGrid = 192
	}
	if c.KernelDamping < 0 || c.KernelDamping >= 1 {
		c.KernelDamping = 0.5
	}
	if c.ParamDamping < 0 || c.ParamDamping >= 1 {
		c.ParamDamping = 0.5
	}
	if c.MuBandHigh <= 1 {
		c.MuBandHigh = 2.5
	}
	if c.EStepSmoothing <= 0 {
		c.EStepSmoothing = 0.02
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 1
	}
	if c.ShardEvents <= 0 {
		c.ShardEvents = 256 << 10
	}
	if c.Resume && c.CheckpointDir == "" {
		return errors.New("core: Resume requires CheckpointDir")
	}
	c.Guard.Fill()
	return nil
}

// Model is a fitted CHASSIS (or HP-baseline) model.
type Model struct {
	M       int
	Variant Variant
	Horizon float64

	// Mu is the exogenous intensity per dimension.
	Mu []float64
	// GammaI, GammaN, Beta are the conformity parameters (dense M×M;
	// zero off the active-pair support). Only meaningful when
	// Variant.ConformityAware.
	GammaI, GammaN, Beta [][]float64
	// Alpha is the free excitation matrix of the HP baselines (and the
	// snapshot excitation ÂᵢⱼT() exports for conformity variants).
	Alpha [][]float64
	// Kernels holds the per-receiver triggering kernels.
	Kernels []kernel.Kernel
	// Forest is the final inferred branching structure of the training
	// sequence.
	Forest *branching.Forest
	// Conf exposes the conformity computer built on the final forest.
	Conf *conformity.Computer
	// History records training LL per EM iteration when requested.
	History []float64
	// Iterations is the number of EM iterations run.
	Iterations int

	cfg        Config
	link       hawkes.Link
	seq        *timeline.Sequence
	estepCalls int
	// stepScale multiplies the M-step's projected-gradient initial step; 1
	// normally, halved by each numerical-guard recovery (guard.Policy.
	// StepBackoff) so retried iterations take more conservative ascent
	// steps. Persisted in checkpoints so resumed runs keep the backoff.
	stepScale float64
	// curIter/curAttempt are the EM loop's position, maintained for the
	// fault-injection hooks' deterministic coordinates.
	curIter, curAttempt int
	// muLo/muHi, when set (conformity variants after a warm start), bound
	// the per-dimension exogenous intensity in the M-step: the HP pilot
	// already estimated the exogenous level with a more expressive
	// excitation, and leaving μ free lets it absorb the endogenous mass
	// whenever the conformity features start out weak (the all-immigrant
	// collapse). Pinning μ to a band around the pilot's estimate forces
	// the optimizer to explain the residual through γᴵ/γᴺ.
	muLo, muHi []float64
	// sources[i] lists the user ids that can excite dimension i (the
	// sparse pair support the M-step optimizes over).
	sources [][]int
}

// dense allocates an M×M zero matrix.
func dense(m int) [][]float64 {
	out := make([][]float64, m)
	for i := range out {
		out[i] = make([]float64, m)
	}
	return out
}

// excitation adapts the fitted parameters to the hawkes.Excitation
// interface. conf/forest are passed explicitly so the same parameters can
// be rebound to a held-out sequence's diffusion trees for evaluation.
type excitation struct {
	m    *Model
	conf *conformity.Computer
}

// Alpha implements hawkes.Excitation: Eq. 4.1 for conformity variants, the
// learned coefficient matrix for HP baselines. Under the linear link,
// negative conformity (disagreement) clamps to zero excitation rather than
// inhibition: a single inhibitory pair would otherwise pin λ to the
// numerical floor at observed events, where the likelihood has value but no
// gradient — the instability that clamping removes. Nonlinear links keep
// the signed value (inhibition is well-behaved inside an exponential).
func (e excitation) Alpha(i, j int, t float64) float64 {
	if !e.m.Variant.ConformityAware {
		return e.m.Alpha[i][j]
	}
	var a float64
	if e.m.Variant.UseInformational {
		if g := e.m.GammaI[i][j]; g != 0 {
			a += g * e.conf.Informational(i, j, t, e.m.Beta[i][j])
		}
	}
	if e.m.Variant.UseNormative {
		if g := e.m.GammaN[i][j]; g != 0 {
			a += g * e.conf.Normative(i, j, t)
		}
	}
	if a < 0 {
		if _, linear := e.m.link.(hawkes.LinearLink); linear {
			return 0
		}
	}
	return a
}

// SetWorkers retunes the parallelism of subsequent operations on the model
// (InferForest, likelihood evaluations): n <= 0 restores the GOMAXPROCS
// default. Results are unaffected — only wall-clock changes — so a model
// loaded on a different machine can be re-tuned freely.
func (m *Model) SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	m.cfg.Workers = n
}

// compensatorOpts returns the adaptive Theorem-7.1 integrator options with
// the model's worker budget (and, when the fit was observed, its metrics
// registry) threaded through, so likelihood evaluations fan their
// per-dimension compensators out over the same pool as the fit.
func (m *Model) compensatorOpts() hawkes.CompensatorOptions {
	o := hawkes.DefaultCompensator()
	o.Workers = m.cfg.Workers
	o.Metrics = m.cfg.metrics
	return o
}

// Process materializes the fitted model as a Hawkes process bound to the
// training-time conformity state.
func (m *Model) Process() *hawkes.Process {
	return m.processWith(m.Conf)
}

func (m *Model) processWith(conf *conformity.Computer) *hawkes.Process {
	return &hawkes.Process{
		M: m.M, Mu: m.Mu,
		Exc:        excitation{m: m, conf: conf},
		Kernels:    hawkes.PerReceiverKernels{Ks: m.Kernels},
		Link:       m.link,
		NoFastPath: m.cfg.FastPath == FastPathOff,
	}
}

// EstimatedInfluence returns the model's influence-matrix estimate Â used
// by the RankCorr metric: for HP baselines, the learned coefficients; for
// conformity variants, the *effective* excitation — the average of
// Eq. 4.1's αᵢⱼ(t) over the source user's actual activity times, which is
// exactly the weight the model applied to j's events when exciting i.
func (m *Model) EstimatedInfluence() [][]float64 {
	out := dense(m.M)
	if !m.Variant.ConformityAware {
		for i := range out {
			copy(out[i], m.Alpha[i])
		}
		return out
	}
	byUser := m.seq.ByUser()
	exc := excitation{m: m, conf: m.Conf}
	for i := 0; i < m.M; i++ {
		for _, j := range m.sources[i] {
			events := byUser[j]
			if len(events) == 0 {
				continue
			}
			var sum float64
			for _, k := range events {
				sum += exc.Alpha(i, j, m.seq.Activities[k].Time)
			}
			out[i][j] = sum / float64(len(events))
		}
	}
	return out
}

// TrainLogLikelihood evaluates Eq. 7.1 on the training sequence under the
// fitted parameters (reference implementation via the hawkes engine).
func (m *Model) TrainLogLikelihood() (float64, error) {
	if m.seq == nil {
		return 0, errors.New("core: model carries no training sequence (sharded fits keep the corpus on disk)")
	}
	return m.Process().LogLikelihood(m.seq, m.compensatorOpts())
}

// InferForest runs the E-step tree inference against an arbitrary
// polarity-annotated sequence using the fitted parameters, returning the
// inferred branching structure. The sequence's own ground-truth parents
// (if any) are ignored. Unlike the EM's internal E-steps — which sample
// parents to explore the posterior — the final readout takes the MAP
// assignment, which is what Table 1 scores.
func (m *Model) InferForest(seq *timeline.Sequence) (*branching.Forest, error) {
	if seq.M != m.M {
		return nil, fmt.Errorf("core: sequence has %d dimensions, model has %d", seq.M, m.M)
	}
	savedMAP := m.cfg.MAPEStep
	m.cfg.MAPEStep = true
	defer func() { m.cfg.MAPEStep = savedMAP }()
	// Bootstrap conformity from an initial heuristic forest, then one
	// parameter-driven pass (two passes let conformity-based excitation
	// inform the final trees).
	f, err := m.bootstrapForest(nil, seq)
	if err != nil {
		return nil, err
	}
	for pass := 0; pass < 2; pass++ {
		conf, err := conformity.New(seq, f, m.cfg.Conformity)
		if err != nil {
			return nil, err
		}
		f, err = m.eStep(seq, conf)
		if err != nil {
			return nil, err
		}
	}
	return f, nil
}
