package core

import (
	"context"
	"errors"
	"fmt"

	"chassis/internal/obs"
)

// Option adjusts the observability hooks of one fit without touching the
// exported Config surface: the zero-value Config — and every struct literal
// in existing callers, golden files, and determinism suites — stays
// byte-compatible, while FitContext callers opt into callbacks and metrics.
type Option func(*Config)

// WithObserver attaches a lifecycle observer to the fit. The observer only
// reads the stats it is handed — an observed fit produces bit-identical
// parameters and forests to an unobserved one (the per-iteration training
// log-likelihood is additionally evaluated so OnIterEnd can report it, a
// pure computation). A nil observer is a no-op option.
func WithObserver(o obs.FitObserver) Option {
	return func(c *Config) { c.observer = obs.Observers(c.observer, o) }
}

// WithMetrics directs the fit's engine instrumentation (phase timers,
// compensator Euler-step counts, E-step scoring counters) into reg. A nil
// registry is a no-op option; without one, an attached observer still gets
// per-iteration Euler-step counts from a private registry.
func WithMetrics(reg *obs.Metrics) Option {
	return func(c *Config) {
		if reg != nil {
			c.metrics = reg
		}
	}
}

// CanceledError reports a fit aborted by context cancellation. It records
// where the EM loop was when the cancellation was honored; the fit returns
// no model alongside it — partially updated state is never handed out.
// errors.Is(err, context.Canceled) (or DeadlineExceeded) sees through it.
type CanceledError struct {
	// Phase names the lifecycle phase that observed the cancellation:
	// "warmstart", "bootstrap", "mstep", "kernels", "estep", "loglik", or
	// "readout".
	Phase string
	// Iteration is the 1-based EM iteration the cancellation hit; 0 when it
	// hit before (or after) the EM loop.
	Iteration int
	// Err is the underlying context error.
	Err error
}

// Error implements error.
func (e *CanceledError) Error() string {
	if e.Iteration > 0 {
		return fmt.Sprintf("core: fit canceled in iteration %d (%s): %v", e.Iteration, e.Phase, e.Err)
	}
	return fmt.Sprintf("core: fit canceled (%s): %v", e.Phase, e.Err)
}

// Unwrap exposes the context error to errors.Is/As.
func (e *CanceledError) Unwrap() error { return e.Err }

// isCancellation reports whether err originates from a done context.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// wrapCancel converts a phase error into *CanceledError when it is a
// context cancellation (possibly already wrapped by an inner phase), and
// passes every other error through untouched.
func wrapCancel(phase string, iter int, err error) error {
	if err == nil {
		return nil
	}
	if !isCancellation(err) {
		return err
	}
	var inner *CanceledError
	if errors.As(err, &inner) {
		err = inner.Err
	}
	return &CanceledError{Phase: phase, Iteration: iter, Err: err}
}

// ctxErr polls a possibly-nil context.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}
