package core

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"chassis/internal/checkpoint"
	"chassis/internal/colstore"
	"chassis/internal/faultinject"
	"chassis/internal/guard"
	"chassis/internal/timeline"
)

// writeCorpusFile converts a sequence to a colstore file in uneven append
// batches (so multi-batch writer paths run) and returns the path.
func writeCorpusFile(t *testing.T, seq *timeline.Sequence, batch int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "corpus.colstore")
	w, err := colstore.Create(path, colstore.Meta{Name: "unit", M: seq.M, Horizon: seq.Horizon})
	if err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < len(seq.Activities); lo += batch {
		hi := min(lo+batch, len(seq.Activities))
		if err := w.Append(seq.Activities[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func openCorpus(t *testing.T, path string) *colstore.Reader {
	t.Helper()
	rd, err := colstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rd.Close() })
	return rd
}

// shardableCfg is the supported-subset config the identity tests fit with.
func shardableCfg() Config {
	cfg := quickCfg(VariantLHP)
	cfg.FixedKernel = true
	return cfg
}

// TestShardedFitMatchesInMemory is the tentpole acceptance contract: the
// out-of-core colstore fit produces a fingerprint-equal model (parameters
// and forest bit-identical) to the in-memory fit of the same corpus, at
// every worker count × shard size combination — shards of one scheduling
// chunk, uneven multi-chunk shards, and one shard holding everything.
func TestShardedFitMatchesInMemory(t *testing.T) {
	forceSmallChunks(t, 48)
	d := smallDataset(t, 41)
	cfg := shardableCfg()

	ref, err := Fit(d.Seq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Fingerprint()

	rd := openCorpus(t, writeCorpusFile(t, d.Seq, 57))
	n := rd.NumEvents()
	if n != d.Seq.Len() {
		t.Fatalf("corpus holds %d events, sequence %d", n, d.Seq.Len())
	}
	for _, workers := range []int{1, 2, 8} {
		for _, shard := range []int{1, 130, n} {
			c := cfg
			c.Workers = workers
			c.ShardEvents = shard
			m, err := FitSharded(context.Background(), rd, c)
			if err != nil {
				t.Fatalf("workers=%d shard=%d: %v", workers, shard, err)
			}
			if got := m.Fingerprint(); got != want {
				t.Errorf("workers=%d shard=%d: fingerprint %s, in-memory %s", workers, shard, got, want)
			}
			for i := range ref.Mu {
				if m.Mu[i] != ref.Mu[i] {
					t.Fatalf("workers=%d shard=%d: Mu[%d] = %v, want %v", workers, shard, i, m.Mu[i], ref.Mu[i])
				}
			}
			gotP, wantP := m.Forest.Parents(), ref.Forest.Parents()
			for k := range wantP {
				if gotP[k] != wantP[k] {
					t.Fatalf("workers=%d shard=%d: parent[%d] = %d, want %d", workers, shard, k, gotP[k], wantP[k])
				}
			}
		}
	}
}

// TestShardedFitExpKernel covers the parametric-exponential-kernel flavor of
// the identity contract (the config the serve layer's fast paths want).
func TestShardedFitExpKernel(t *testing.T) {
	forceSmallChunks(t, 48)
	d := smallDataset(t, 43)
	cfg := quickCfg(VariantLHP)
	cfg.ExpKernel = true

	ref, err := Fit(d.Seq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rd := openCorpus(t, writeCorpusFile(t, d.Seq, 200))
	c := cfg
	c.ShardEvents = 100
	c.Workers = 2
	m, err := FitSharded(context.Background(), rd, c)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := m.Fingerprint(), ref.Fingerprint(); got != want {
		t.Errorf("exp-kernel sharded fingerprint %s, in-memory %s", got, want)
	}
}

// TestShardedRejectsUnsupported pins the gate: every feature outside the
// supported subset fails fast with *ShardedUnsupportedError instead of
// fitting something silently different.
func TestShardedRejectsUnsupported(t *testing.T) {
	d := smallDataset(t, 44)
	rd := openCorpus(t, writeCorpusFile(t, d.Seq, 500))
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"conformity", func(c *Config) { c.Variant = VariantL }},
		{"nonlinear", func(c *Config) { c.Variant = VariantEHP }},
		{"observed-trees", func(c *Config) { c.UseObservedTrees = true }},
		{"track-history", func(c *Config) { c.TrackHistory = true }},
		{"guard", func(c *Config) { c.Guard = guard.Policy{Enabled: true} }},
		{"nonparametric-kernels", func(c *Config) { c.FixedKernel = false }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := shardableCfg()
			tc.mut(&cfg)
			_, err := FitSharded(context.Background(), rd, cfg)
			var ue *ShardedUnsupportedError
			if !errors.As(err, &ue) {
				t.Fatalf("got %v, want *ShardedUnsupportedError", err)
			}
		})
	}
	if _, err := FitSharded(context.Background(), nil, shardableCfg()); err == nil {
		t.Error("nil reader must fail")
	}
}

// TestShardedCrashResume kills a checkpointing sharded fit mid-run and
// resumes it — under a different worker count AND shard size — expecting the
// final model to be fingerprint-equal to an uninterrupted run.
func TestShardedCrashResume(t *testing.T) {
	forceSmallChunks(t, 48)
	d := smallDataset(t, 45)
	cfg := shardableCfg()
	rd := openCorpus(t, writeCorpusFile(t, d.Seq, 300))

	base, err := FitSharded(context.Background(), rd, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := base.Fingerprint()

	dir := t.TempDir()
	cc := cfg
	cc.CheckpointDir = dir
	cc.CheckpointEvery = 1
	cc.Workers = 2
	cc.ShardEvents = 100
	faultinject.CrashAfterIter = func(iter int) bool { return iter == 2 }
	_, err = FitSharded(context.Background(), rd, cc)
	faultinject.Reset()
	if !errors.Is(err, faultinject.ErrInjectedCrash) {
		t.Fatalf("crash-at-2 sharded fit: got %v, want ErrInjectedCrash", err)
	}

	cc.Resume = true
	cc.Workers = 1
	cc.ShardEvents = 1
	m, err := FitSharded(context.Background(), rd, cc)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Fingerprint(); got != want {
		t.Errorf("resumed sharded fingerprint %s, uninterrupted %s", got, want)
	}
}

// TestShardedRejectsForeignCheckpoint: a checkpoint written by the in-memory
// driver (sequence-hash data fingerprint) must not be resumable by the
// sharded driver (colstore footer fingerprint) — the hashes cover different
// byte representations, so cross-resuming would skip the data guard.
func TestShardedRejectsForeignCheckpoint(t *testing.T) {
	d := smallDataset(t, 46)
	dir := t.TempDir()
	cfg := shardableCfg()
	cfg.CheckpointDir = dir
	cfg.CheckpointEvery = 1
	if _, err := Fit(d.Seq, cfg); err != nil {
		t.Fatal(err)
	}
	rd := openCorpus(t, writeCorpusFile(t, d.Seq, 500))
	cfg.Resume = true
	_, err := FitSharded(context.Background(), rd, cfg)
	var mm *checkpoint.MismatchError
	if !errors.As(err, &mm) || mm.Field != "data" {
		t.Fatalf("got %v, want data MismatchError", err)
	}
}

// TestShardedModelGuardsSequenceMethods: the sharded model carries no
// training sequence; methods that re-read it must error, not panic.
func TestShardedModelGuardsSequenceMethods(t *testing.T) {
	d := smallDataset(t, 47)
	rd := openCorpus(t, writeCorpusFile(t, d.Seq, 500))
	m, err := FitSharded(context.Background(), rd, shardableCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.TrainLogLikelihood(); err == nil {
		t.Error("TrainLogLikelihood on a sharded model must error")
	}
	if _, err := m.HeldOutLogLikelihood(d.Seq); err == nil {
		t.Error("HeldOutLogLikelihood on a sharded model must error")
	}
}
