package core

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"chassis/internal/checkpoint"
	"chassis/internal/colstore"
	"chassis/internal/conformity"
	"chassis/internal/faultinject"
	"chassis/internal/guard"
	"chassis/internal/timeline"
)

// writeCorpusFile converts a sequence to a colstore file in uneven append
// batches (so multi-batch writer paths run) and returns the path.
func writeCorpusFile(t *testing.T, seq *timeline.Sequence, batch int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "corpus.colstore")
	w, err := colstore.Create(path, colstore.Meta{Name: "unit", M: seq.M, Horizon: seq.Horizon})
	if err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < len(seq.Activities); lo += batch {
		hi := min(lo+batch, len(seq.Activities))
		if err := w.Append(seq.Activities[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func openCorpus(t *testing.T, path string) *colstore.Reader {
	t.Helper()
	rd, err := colstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rd.Close() })
	return rd
}

// shardableCfg is the supported-subset config the identity tests fit with.
func shardableCfg() Config {
	cfg := quickCfg(VariantLHP)
	cfg.FixedKernel = true
	return cfg
}

// TestShardedFitMatchesInMemory is the tentpole acceptance contract: the
// out-of-core colstore fit produces a fingerprint-equal model (parameters
// and forest bit-identical) to the in-memory fit of the same corpus, at
// every worker count × shard size combination — shards of one scheduling
// chunk, uneven multi-chunk shards, and one shard holding everything.
func TestShardedFitMatchesInMemory(t *testing.T) {
	forceSmallChunks(t, 48)
	d := smallDataset(t, 41)
	cfg := shardableCfg()

	ref, err := Fit(d.Seq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Fingerprint()

	rd := openCorpus(t, writeCorpusFile(t, d.Seq, 57))
	n := rd.NumEvents()
	if n != d.Seq.Len() {
		t.Fatalf("corpus holds %d events, sequence %d", n, d.Seq.Len())
	}
	for _, workers := range []int{1, 2, 8} {
		for _, shard := range []int{1, 130, n} {
			c := cfg
			c.Workers = workers
			c.ShardEvents = shard
			m, err := FitSharded(context.Background(), rd, c)
			if err != nil {
				t.Fatalf("workers=%d shard=%d: %v", workers, shard, err)
			}
			if got := m.Fingerprint(); got != want {
				t.Errorf("workers=%d shard=%d: fingerprint %s, in-memory %s", workers, shard, got, want)
			}
			for i := range ref.Mu {
				if m.Mu[i] != ref.Mu[i] {
					t.Fatalf("workers=%d shard=%d: Mu[%d] = %v, want %v", workers, shard, i, m.Mu[i], ref.Mu[i])
				}
			}
			gotP, wantP := m.Forest.Parents(), ref.Forest.Parents()
			for k := range wantP {
				if gotP[k] != wantP[k] {
					t.Fatalf("workers=%d shard=%d: parent[%d] = %d, want %d", workers, shard, k, gotP[k], wantP[k])
				}
			}
		}
	}
}

// TestShardedFitExpKernel covers the parametric-exponential-kernel flavor of
// the identity contract (the config the serve layer's fast paths want).
func TestShardedFitExpKernel(t *testing.T) {
	forceSmallChunks(t, 48)
	d := smallDataset(t, 43)
	cfg := quickCfg(VariantLHP)
	cfg.ExpKernel = true

	ref, err := Fit(d.Seq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rd := openCorpus(t, writeCorpusFile(t, d.Seq, 200))
	c := cfg
	c.ShardEvents = 100
	c.Workers = 2
	m, err := FitSharded(context.Background(), rd, c)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := m.Fingerprint(), ref.Fingerprint(); got != want {
		t.Errorf("exp-kernel sharded fingerprint %s, in-memory %s", got, want)
	}
}

// TestShardedRejectsUnsupported pins the gate: every feature outside the
// supported subset fails fast with *ShardedUnsupportedError carrying a
// feature message specific enough to act on — in particular the two
// remaining conformity combinations (nonlinear link, nonparametric kernel)
// name themselves instead of hiding behind the generic baseline gates.
func TestShardedRejectsUnsupported(t *testing.T) {
	d := smallDataset(t, 44)
	rd := openCorpus(t, writeCorpusFile(t, d.Seq, 500))
	cases := []struct {
		name string
		mut  func(*Config)
		want string // substring of the typed error's Feature
	}{
		{"nonlinear", func(c *Config) { c.Variant = VariantEHP }, "nonlinear links"},
		{"conformity-nonlinear", func(c *Config) { c.Variant = VariantE }, "conformity-aware variants with nonlinear links"},
		{"observed-trees", func(c *Config) { c.UseObservedTrees = true }, "UseObservedTrees"},
		{"track-history", func(c *Config) { c.TrackHistory = true }, "TrackHistory"},
		{"guard", func(c *Config) { c.Guard = guard.Policy{Enabled: true} }, "numerical guard"},
		{"nonparametric-kernels", func(c *Config) { c.FixedKernel = false }, "nonparametric kernel updates"},
		{"conformity-nonparametric", func(c *Config) { c.Variant = VariantL; c.FixedKernel = false }, "conformity-aware variants with nonparametric kernel updates"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := shardableCfg()
			tc.mut(&cfg)
			_, err := FitSharded(context.Background(), rd, cfg)
			var ue *ShardedUnsupportedError
			if !errors.As(err, &ue) {
				t.Fatalf("got %v, want *ShardedUnsupportedError", err)
			}
			if !strings.Contains(ue.Feature, tc.want) {
				t.Fatalf("feature %q does not mention %q", ue.Feature, tc.want)
			}
		})
	}
	if _, err := FitSharded(context.Background(), nil, shardableCfg()); err == nil {
		t.Error("nil reader must fail")
	}
}

// TestShardedConformityFitMatchesInMemory extends the identity contract to
// the lifted conformity-aware subset: the streamed per-iteration conformity
// rebuild (colstore scan → accumulator → column-built computer) plus the
// sharded L-HP warm-start pilot must reproduce the in-memory CHASSIS-L fit
// bit for bit at every worker count × shard size.
func TestShardedConformityFitMatchesInMemory(t *testing.T) {
	forceSmallChunks(t, 48)
	d := smallDataset(t, 48)
	cfg := quickCfg(VariantL)
	cfg.FixedKernel = true

	ref, err := Fit(d.Seq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Fingerprint()

	rd := openCorpus(t, writeCorpusFile(t, d.Seq, 57))
	n := rd.NumEvents()
	for _, workers := range []int{1, 2, 8} {
		for _, shard := range []int{1, 130, n} {
			c := cfg
			c.Workers = workers
			c.ShardEvents = shard
			m, err := FitSharded(context.Background(), rd, c)
			if err != nil {
				t.Fatalf("workers=%d shard=%d: %v", workers, shard, err)
			}
			if got := m.Fingerprint(); got != want {
				t.Errorf("workers=%d shard=%d: fingerprint %s, in-memory %s", workers, shard, got, want)
			}
			if m.Conf == nil {
				t.Fatalf("workers=%d shard=%d: sharded conformity fit carries no final conformity state", workers, shard)
			}
		}
	}
}

// TestShardedConformityFlavors covers the remaining lifted combinations with
// one fingerprint identity check each: the single-channel linear variants
// (informational-only, normative-only) and the parametric-exponential-kernel
// flavor of CHASSIS-L.
func TestShardedConformityFlavors(t *testing.T) {
	forceSmallChunks(t, 48)
	d := smallDataset(t, 49)
	rd := openCorpus(t, writeCorpusFile(t, d.Seq, 200))
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"informational-only", func(c *Config) { c.Variant = VariantLI }},
		{"normative-only", func(c *Config) { c.Variant = VariantLN }},
		{"exp-kernel", func(c *Config) { c.FixedKernel = false; c.ExpKernel = true }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := quickCfg(VariantL)
			cfg.FixedKernel = true
			tc.mut(&cfg)
			ref, err := Fit(d.Seq, cfg)
			if err != nil {
				t.Fatal(err)
			}
			c := cfg
			c.Workers = 2
			c.ShardEvents = 100
			m, err := FitSharded(context.Background(), rd, c)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := m.Fingerprint(), ref.Fingerprint(); got != want {
				t.Errorf("sharded fingerprint %s, in-memory %s", got, want)
			}
		})
	}
}

// TestShardedConformityPairBudget: the streaming rebuild honours the
// active-pair budget, surfacing *conformity.PairBudgetError instead of
// growing the pair map without bound.
func TestShardedConformityPairBudget(t *testing.T) {
	d := smallDataset(t, 50)
	rd := openCorpus(t, writeCorpusFile(t, d.Seq, 500))
	cfg := quickCfg(VariantL)
	cfg.FixedKernel = true
	cfg.Conformity.MaxActivePairs = 1
	_, err := FitSharded(context.Background(), rd, cfg)
	var pb *conformity.PairBudgetError
	if !errors.As(err, &pb) {
		t.Fatalf("got %v, want *conformity.PairBudgetError", err)
	}
	if pb.Budget != 1 {
		t.Fatalf("budget in error = %d, want 1", pb.Budget)
	}
}

// TestShardedCrashResume kills a checkpointing sharded fit mid-run and
// resumes it — under a different worker count AND shard size — expecting the
// final model to be fingerprint-equal to an uninterrupted run.
func TestShardedCrashResume(t *testing.T) {
	forceSmallChunks(t, 48)
	d := smallDataset(t, 45)
	cfg := shardableCfg()
	rd := openCorpus(t, writeCorpusFile(t, d.Seq, 300))

	base, err := FitSharded(context.Background(), rd, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := base.Fingerprint()

	dir := t.TempDir()
	cc := cfg
	cc.CheckpointDir = dir
	cc.CheckpointEvery = 1
	cc.Workers = 2
	cc.ShardEvents = 100
	faultinject.CrashAfterIter = func(iter int) bool { return iter == 2 }
	_, err = FitSharded(context.Background(), rd, cc)
	faultinject.Reset()
	if !errors.Is(err, faultinject.ErrInjectedCrash) {
		t.Fatalf("crash-at-2 sharded fit: got %v, want ErrInjectedCrash", err)
	}

	cc.Resume = true
	cc.Workers = 1
	cc.ShardEvents = 1
	m, err := FitSharded(context.Background(), rd, cc)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Fingerprint(); got != want {
		t.Errorf("resumed sharded fingerprint %s, uninterrupted %s", got, want)
	}
}

// TestShardedConformityCrashResume is the crash-resume contract for the
// lifted conformity subset: the resumed fit rebuilds its conformity snapshot
// from the checkpointed forest before continuing, so the final model matches
// an uninterrupted run even across a worker-count and shard-size change.
func TestShardedConformityCrashResume(t *testing.T) {
	forceSmallChunks(t, 48)
	d := smallDataset(t, 51)
	cfg := quickCfg(VariantL)
	cfg.FixedKernel = true
	rd := openCorpus(t, writeCorpusFile(t, d.Seq, 300))

	base, err := FitSharded(context.Background(), rd, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := base.Fingerprint()

	dir := t.TempDir()
	cc := cfg
	cc.CheckpointDir = dir
	cc.CheckpointEvery = 1
	cc.Workers = 2
	cc.ShardEvents = 100
	faultinject.CrashAfterIter = func(iter int) bool { return iter == 2 }
	_, err = FitSharded(context.Background(), rd, cc)
	faultinject.Reset()
	if !errors.Is(err, faultinject.ErrInjectedCrash) {
		t.Fatalf("crash-at-2 conformity sharded fit: got %v, want ErrInjectedCrash", err)
	}

	cc.Resume = true
	cc.Workers = 1
	cc.ShardEvents = 1
	m, err := FitSharded(context.Background(), rd, cc)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Fingerprint(); got != want {
		t.Errorf("resumed conformity sharded fingerprint %s, uninterrupted %s", got, want)
	}
}

// TestShardedRejectsForeignCheckpoint: a checkpoint written by the in-memory
// driver (sequence-hash data fingerprint) must not be resumable by the
// sharded driver (colstore footer fingerprint) — the hashes cover different
// byte representations, so cross-resuming would skip the data guard.
func TestShardedRejectsForeignCheckpoint(t *testing.T) {
	d := smallDataset(t, 46)
	dir := t.TempDir()
	cfg := shardableCfg()
	cfg.CheckpointDir = dir
	cfg.CheckpointEvery = 1
	if _, err := Fit(d.Seq, cfg); err != nil {
		t.Fatal(err)
	}
	rd := openCorpus(t, writeCorpusFile(t, d.Seq, 500))
	cfg.Resume = true
	_, err := FitSharded(context.Background(), rd, cfg)
	var mm *checkpoint.MismatchError
	if !errors.As(err, &mm) || mm.Field != "data" {
		t.Fatalf("got %v, want data MismatchError", err)
	}
}

// TestShardedModelGuardsSequenceMethods: the sharded model carries no
// training sequence; methods that re-read it must error, not panic.
func TestShardedModelGuardsSequenceMethods(t *testing.T) {
	d := smallDataset(t, 47)
	rd := openCorpus(t, writeCorpusFile(t, d.Seq, 500))
	m, err := FitSharded(context.Background(), rd, shardableCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.TrainLogLikelihood(); err == nil {
		t.Error("TrainLogLikelihood on a sharded model must error")
	}
	if _, err := m.HeldOutLogLikelihood(d.Seq); err == nil {
		t.Error("HeldOutLogLikelihood on a sharded model must error")
	}
}
