package core

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"chassis/internal/obs"
)

// forceRefreshEvery pins the E-step refresh cadence for a test.
func forceRefreshEvery(t *testing.T, every int) {
	t.Helper()
	old := testRefreshEvery
	testRefreshEvery = every
	t.Cleanup(func() { testRefreshEvery = old })
}

// TestObserverCallbackOrdering pins the FitObserver contract: callbacks
// arrive OnIterStart → OnMStep → [OnEStep] → OnIterEnd with strictly
// increasing 1-based iteration numbers, one OnMStep and OnIterEnd per
// iteration, and per-iteration stats populated (finite LL, positive phase
// times, entropy on refresh iterations).
func TestObserverCallbackOrdering(t *testing.T) {
	forceSmallChunks(t, 48)
	forceRefreshEvery(t, 2)
	d := smallDataset(t, 90)
	cfg := quickCfg(VariantL)
	cfg.EMIters = 5
	col := &obs.CollectObserver{}
	m, err := FitContext(nil, d.Seq, cfg, WithObserver(col))
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Fatal("nil model from successful fit")
	}
	if len(col.Starts) != cfg.EMIters || len(col.Iters) != cfg.EMIters || len(col.MForms) != cfg.EMIters {
		t.Fatalf("callback counts: starts=%d mtsteps=%d ends=%d, want %d each",
			len(col.Starts), len(col.MForms), len(col.Iters), cfg.EMIters)
	}
	for i, iter := range col.Starts {
		if iter != i+1 {
			t.Fatalf("OnIterStart[%d] = %d, want strictly increasing 1-based", i, iter)
		}
		if col.Iters[i].Iter != i+1 || col.MForms[i].Iter != i+1 {
			t.Fatalf("iteration numbers out of order at %d: end=%d mstep=%d", i, col.Iters[i].Iter, col.MForms[i].Iter)
		}
	}
	// Refresh cadence 2 with EMIters 5: E-steps on iterations 2 and 4.
	if len(col.EForms) != 2 || col.EForms[0].Iter != 2 || col.EForms[1].Iter != 4 {
		t.Fatalf("E-step callbacks = %+v, want iterations 2 and 4", col.EForms)
	}
	for _, es := range col.EForms {
		if es.Events <= 0 {
			t.Errorf("E-step iter %d scored %d events", es.Iter, es.Events)
		}
		if math.IsNaN(es.Entropy) || es.Entropy < 0 {
			t.Errorf("E-step iter %d entropy = %v, want finite >= 0", es.Iter, es.Entropy)
		}
	}
	for _, st := range col.Iters {
		// An attached observer forces per-iteration LL evaluation.
		if math.IsNaN(st.TrainLL) {
			t.Errorf("iter %d: TrainLL not evaluated", st.Iter)
		}
		if st.Seconds <= 0 || st.MStepSeconds <= 0 {
			t.Errorf("iter %d: non-positive timings %+v", st.Iter, st)
		}
		if math.IsNaN(st.GradNorm) || st.GradNorm < 0 {
			t.Errorf("iter %d: GradNorm = %v", st.Iter, st.GradNorm)
		}
	}
	// Observer alone must not populate Model.History (TrackHistory was off).
	if len(m.History) != 0 {
		t.Errorf("observer populated History (%d entries) without TrackHistory", len(m.History))
	}
}

// TestObservedFitBitIdenticalToUnobserved is the purity half of the observer
// contract: attaching an observer and a metrics registry must not change one
// bit of the fitted parameters, forest, or history, at any worker count.
func TestObservedFitBitIdenticalToUnobserved(t *testing.T) {
	forceSmallChunks(t, 48)
	d := smallDataset(t, 91)
	for _, workers := range []int{1, 4} {
		cfg := quickCfg(VariantL)
		cfg.EMIters = 4
		cfg.TrackHistory = true
		cfg.Workers = workers
		plain, err := Fit(d.Seq, cfg)
		if err != nil {
			t.Fatal(err)
		}
		reg := obs.NewMetrics()
		observed, err := FitContext(context.Background(), d.Seq, cfg,
			WithObserver(&obs.CollectObserver{}), WithMetrics(reg))
		if err != nil {
			t.Fatal(err)
		}
		assertSummariesIdentical(t, summarize(plain), summarize(observed))
		if len(reg.Names("timer")) == 0 {
			t.Error("metrics registry collected nothing")
		}
	}
}

// TestObservedFitMatchesEStepGolden re-runs the golden E-step scenario with
// an observer attached: the inferred parents must still match the checked-in
// fixture, proving observation cannot perturb the posterior readout.
func TestObservedFitMatchesEStepGolden(t *testing.T) {
	blob, err := os.ReadFile(filepath.Join("testdata", "estep_parents.golden.json"))
	if err != nil {
		t.Fatalf("missing golden file: %v", err)
	}
	var want goldenParents
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	d := smallDataset(t, 42)
	cfg := quickCfg(VariantL)
	cfg.EMIters = 3
	m, err := FitContext(context.Background(), d.Seq, cfg,
		WithObserver(&obs.CollectObserver{}), WithMetrics(obs.NewMetrics()))
	if err != nil {
		t.Fatal(err)
	}
	f, err := m.InferForest(d.Seq.StripParents())
	if err != nil {
		t.Fatal(err)
	}
	parents := f.Parents()
	if len(parents) != len(want.Parents) {
		t.Fatalf("forest size %d, golden %d", len(parents), len(want.Parents))
	}
	for k := range parents {
		if int(parents[k]) != want.Parents[k] {
			t.Fatalf("observed fit drifted from golden at event %d: %d vs %d",
				k, parents[k], want.Parents[k])
		}
	}
}

func TestFitContextPreCancelled(t *testing.T) {
	d := smallDataset(t, 92)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := quickCfg(VariantL)
	m, err := FitContext(ctx, d.Seq, cfg)
	if m != nil {
		t.Fatal("cancelled fit must not return partial state")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled in the chain", err)
	}
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("got %T, want *CanceledError", err)
	}
}

// TestFitCancellationFromGoroutine cancels the context from a separate
// goroutine while the EM loop runs: the fit must return promptly with a
// *CanceledError naming the aborted iteration, never a model, and must not
// leak worker goroutines.
func TestFitCancellationFromGoroutine(t *testing.T) {
	forceSmallChunks(t, 48)
	forceRefreshEvery(t, 2)
	baseline := runtime.NumGoroutine()
	d := smallDataset(t, 93)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Fire the cancellation mid-EM: when iteration 2 starts, a goroutine
	// pulls the plug while the M-step/E-step pools are working.
	fired := make(chan struct{})
	obsv := obs.Observers(iterStartFunc(func(iter int) {
		if iter == 2 {
			go func() {
				cancel()
				close(fired)
			}()
		}
	}))
	cfg := quickCfg(VariantE) // nonlinear: warm start + Euler compensators, the slow path
	cfg.EMIters = 50
	cfg.Workers = 4
	start := time.Now()
	m, err := FitContext(ctx, d.Seq, cfg, WithObserver(obsv))
	elapsed := time.Since(start)
	if m != nil {
		t.Fatal("cancelled fit must not return partial state")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled in the chain", err)
	}
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("got %T (%v), want *CanceledError", err, err)
	}
	if ce.Iteration < 2 {
		t.Errorf("canceled in iteration %d (%s), want >= 2 (cancel fired at iteration 2)", ce.Iteration, ce.Phase)
	}
	if ce.Phase == "" {
		t.Error("CanceledError must name the aborting phase")
	}
	<-fired
	if elapsed > 30*time.Second {
		t.Errorf("cancelled fit took %v — not a prompt return", elapsed)
	}
	// No leaked workers: the goroutine count must return to the baseline.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline+1 { // +1 tolerates the test's own cancel goroutine
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker goroutines leaked: %d before fit, %d after cancellation",
				baseline, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// iterStartFunc adapts a function to FitObserver for cancellation tests.
type iterStartFunc func(iter int)

func (f iterStartFunc) OnIterStart(iter int)    { f(iter) }
func (f iterStartFunc) OnEStep(obs.EStepStats)  {}
func (f iterStartFunc) OnMStep(obs.MStepStats)  {}
func (f iterStartFunc) OnIterEnd(obs.IterStats) {}

// TestCanceledErrorUnwraps pins the error surface: errors.Is sees the
// context error through the wrapper, and the message names phase and
// iteration.
func TestCanceledErrorUnwraps(t *testing.T) {
	inner := &CanceledError{Phase: "estep", Iteration: 3, Err: context.Canceled}
	if !errors.Is(inner, context.Canceled) {
		t.Error("CanceledError must unwrap to the context error")
	}
	// wrapCancel flattens nested CanceledErrors (warm-start pilots rewrap).
	outer := wrapCancel("warmstart", 0, inner)
	var ce *CanceledError
	if !errors.As(outer, &ce) {
		t.Fatalf("wrapCancel returned %T", outer)
	}
	if ce.Phase != "warmstart" {
		t.Errorf("outer phase = %q", ce.Phase)
	}
	if !errors.Is(outer, context.Canceled) {
		t.Error("nested wrap must still unwrap to context.Canceled")
	}
	if wrapCancel("x", 1, nil) != nil {
		t.Error("wrapCancel(nil) must be nil")
	}
	plain := errors.New("disk full")
	if got := wrapCancel("x", 1, plain); got != plain {
		t.Errorf("non-cancellation errors must pass through, got %v", got)
	}
}
