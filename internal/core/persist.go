package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"chassis/internal/branching"
	"chassis/internal/checkpoint"
	"chassis/internal/conformity"
	"chassis/internal/kernel"
	"chassis/internal/timeline"
)

// modelFormatVersion is the model-file wire version Save writes. Bump it
// when modelJSON changes incompatibly; LoadModel rejects files from the
// future with a *checkpoint.VersionError instead of silently misreading
// them. Files without a version field (written before versioning) read as
// version 0 and stay loadable.
const modelFormatVersion = 1

// modelJSON is the wire form of a fitted model. The training sequence is
// not embedded — it is the caller's dataset file — so model files stay
// small; Load rebinds the parameters to the sequence and rebuilds the
// conformity state from the persisted forest.
type modelJSON struct {
	Version    int         `json:"version"`
	Variant    Variant     `json:"variant"`
	M          int         `json:"m"`
	Horizon    float64     `json:"horizon"`
	Mu         []float64   `json:"mu"`
	GammaI     [][]float64 `json:"gamma_i,omitempty"`
	GammaN     [][]float64 `json:"gamma_n,omitempty"`
	Beta       [][]float64 `json:"beta,omitempty"`
	Alpha      [][]float64 `json:"alpha,omitempty"`
	Sources    [][]int     `json:"sources"`
	Parents    []int       `json:"parents"`
	KernelStep []float64   `json:"kernel_step"`
	KernelVals [][]float64 `json:"kernel_values"`
	// KernelExp carries the exact parametric form when every kernel is
	// exponential (ExpKernel fits). The tabulated KernelStep/KernelVals are
	// still written — the format version stays 1 and old readers keep
	// working — but a reader that understands this field restores
	// kernel.Exponential values, preserving the fitted process's
	// eligibility for the exponential fast path across a save/load cycle.
	KernelExp  []expKernelJSON `json:"kernel_exp,omitempty"`
	Iterations int             `json:"iterations"`
	Config     Config          `json:"config"`
}

// expKernelJSON is the wire form of one kernel.Exponential.
type expKernelJSON struct {
	Rate  float64 `json:"rate"`
	Scale float64 `json:"scale"`
}

// expKernelParams extracts the parametric form when every kernel in the
// bank is a kernel.Exponential value; ok is false otherwise.
func expKernelParams(kernels []kernel.Kernel) (params []expKernelJSON, ok bool) {
	params = make([]expKernelJSON, len(kernels))
	for i, k := range kernels {
		e, isExp := k.(kernel.Exponential)
		if !isExp {
			return nil, false
		}
		params[i] = expKernelJSON{Rate: e.Rate, Scale: e.Scale}
	}
	return params, len(kernels) > 0
}

// restoreExpKernels is expKernelParams' inverse.
func restoreExpKernels(params []expKernelJSON) ([]kernel.Kernel, error) {
	out := make([]kernel.Kernel, len(params))
	for i, p := range params {
		if !(p.Rate > 0) || !(p.Scale >= 0) {
			return nil, fmt.Errorf("core: kernel %d: invalid exponential parameters rate=%g scale=%g", i, p.Rate, p.Scale)
		}
		out[i] = kernel.Exponential{Rate: p.Rate, Scale: p.Scale}
	}
	return out, nil
}

// tabulateKernels serializes triggering kernels to (step, values) tables —
// kernel.Discrete's exact representation, so discrete kernels round-trip
// bit-identically; other kernel types are tabulated onto their support.
// Shared by the model codec and the checkpoint state codec.
func tabulateKernels(kernels []kernel.Kernel) (steps []float64, vals [][]float64, err error) {
	steps = make([]float64, len(kernels))
	vals = make([][]float64, len(kernels))
	for i, k := range kernels {
		d, ok := k.(*kernel.Discrete)
		if !ok {
			d, err = kernel.Sample(k, k.Support()/24, 25)
			if err != nil {
				return nil, nil, fmt.Errorf("core: serializing kernel %d: %w", i, err)
			}
		}
		steps[i] = d.Step
		vals[i] = d.Values
	}
	return steps, vals, nil
}

// restoreKernels is tabulateKernels' inverse.
func restoreKernels(steps []float64, vals [][]float64) ([]kernel.Kernel, error) {
	if len(steps) != len(vals) {
		return nil, fmt.Errorf("core: kernel table has %d steps but %d value rows", len(steps), len(vals))
	}
	out := make([]kernel.Kernel, len(steps))
	for i := range steps {
		d, err := kernel.NewDiscrete(steps[i], vals[i])
		if err != nil {
			return nil, fmt.Errorf("core: kernel %d: %w", i, err)
		}
		out[i] = d
	}
	return out, nil
}

// parentInts flattens a branching forest to its parent vector as plain ints
// (nil forest → nil).
func parentInts(f *branching.Forest) []int {
	if f == nil {
		return nil
	}
	parents := f.Parents()
	out := make([]int, len(parents))
	for i, p := range parents {
		out[i] = int(p)
	}
	return out
}

// forestFromInts rebuilds a branching forest from a persisted parent vector.
func forestFromInts(parents []int) (*branching.Forest, error) {
	ids := make([]timeline.ActivityID, len(parents))
	for i, p := range parents {
		ids[i] = timeline.ActivityID(p)
	}
	f, err := branching.FromParents(ids)
	if err != nil {
		return nil, fmt.Errorf("core: persisted forest invalid: %w", err)
	}
	return f, nil
}

// Save serializes the fitted model (parameters, kernels, inferred forest,
// configuration) as JSON. The training sequence itself is not embedded;
// pass it again to Load.
func (m *Model) Save(w io.Writer) error {
	out := modelJSON{
		Version: modelFormatVersion,
		Variant: m.Variant, M: m.M, Horizon: m.Horizon,
		Mu: m.Mu, Sources: m.sources, Iterations: m.Iterations,
		Config: m.cfg,
	}
	if m.Variant.ConformityAware {
		out.GammaI, out.GammaN, out.Beta = m.GammaI, m.GammaN, m.Beta
	} else {
		out.Alpha = m.Alpha
	}
	out.Parents = parentInts(m.Forest)
	var err error
	out.KernelStep, out.KernelVals, err = tabulateKernels(m.Kernels)
	if err != nil {
		return err
	}
	if params, ok := expKernelParams(m.Kernels); ok {
		out.KernelExp = params
	}
	return json.NewEncoder(w).Encode(out)
}

// LoadModel deserializes a model saved by Save and rebinds it to its
// training sequence (the same one passed to Fit; Load validates the shape).
func LoadModel(r io.Reader, train *timeline.Sequence) (*Model, error) {
	var in modelJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("core: decoding model: %w", err)
	}
	if in.Version > modelFormatVersion {
		return nil, &checkpoint.VersionError{Got: in.Version, Supported: modelFormatVersion}
	}
	if train == nil || train.M != in.M {
		return nil, errors.New("core: LoadModel needs the original training sequence")
	}
	if len(in.Parents) != train.Len() {
		return nil, fmt.Errorf("core: persisted forest covers %d activities, sequence has %d", len(in.Parents), train.Len())
	}
	link, err := in.Variant.Link()
	if err != nil {
		return nil, err
	}
	m := &Model{
		M: in.M, Variant: in.Variant, Horizon: in.Horizon,
		Mu: in.Mu, GammaI: in.GammaI, GammaN: in.GammaN,
		Beta: in.Beta, Alpha: in.Alpha,
		Kernels: make([]kernel.Kernel, in.M),
		cfg:     in.Config, link: link, seq: train,
		sources: in.Sources, Iterations: in.Iterations,
	}
	if m.GammaI == nil {
		m.GammaI = dense(in.M)
	}
	if m.GammaN == nil {
		m.GammaN = dense(in.M)
	}
	if m.Beta == nil {
		m.Beta = dense(in.M)
	}
	if m.Alpha == nil {
		m.Alpha = dense(in.M)
	}
	if in.KernelExp != nil {
		if len(in.KernelExp) != in.M {
			return nil, fmt.Errorf("core: kernel_exp has %d entries, model has %d dimensions", len(in.KernelExp), in.M)
		}
		m.Kernels, err = restoreExpKernels(in.KernelExp)
	} else {
		m.Kernels, err = restoreKernels(in.KernelStep, in.KernelVals)
	}
	if err != nil {
		return nil, err
	}
	m.Forest, err = forestFromInts(in.Parents)
	if err != nil {
		return nil, err
	}
	if m.Variant.ConformityAware {
		work := train.StripParents()
		m.Conf, err = conformity.New(work, m.Forest, m.cfg.Conformity)
		if err != nil {
			return nil, err
		}
	}
	return m, nil
}
