package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"chassis/internal/branching"
	"chassis/internal/conformity"
	"chassis/internal/kernel"
	"chassis/internal/timeline"
)

// modelJSON is the wire form of a fitted model. The training sequence is
// not embedded — it is the caller's dataset file — so model files stay
// small; Load rebinds the parameters to the sequence and rebuilds the
// conformity state from the persisted forest.
type modelJSON struct {
	Variant    Variant     `json:"variant"`
	M          int         `json:"m"`
	Horizon    float64     `json:"horizon"`
	Mu         []float64   `json:"mu"`
	GammaI     [][]float64 `json:"gamma_i,omitempty"`
	GammaN     [][]float64 `json:"gamma_n,omitempty"`
	Beta       [][]float64 `json:"beta,omitempty"`
	Alpha      [][]float64 `json:"alpha,omitempty"`
	Sources    [][]int     `json:"sources"`
	Parents    []int       `json:"parents"`
	KernelStep []float64   `json:"kernel_step"`
	KernelVals [][]float64 `json:"kernel_values"`
	Iterations int         `json:"iterations"`
	Config     Config      `json:"config"`
}

// Save serializes the fitted model (parameters, kernels, inferred forest,
// configuration) as JSON. The training sequence itself is not embedded;
// pass it again to Load.
func (m *Model) Save(w io.Writer) error {
	out := modelJSON{
		Variant: m.Variant, M: m.M, Horizon: m.Horizon,
		Mu: m.Mu, Sources: m.sources, Iterations: m.Iterations,
		Config: m.cfg,
	}
	if m.Variant.ConformityAware {
		out.GammaI, out.GammaN, out.Beta = m.GammaI, m.GammaN, m.Beta
	} else {
		out.Alpha = m.Alpha
	}
	if m.Forest != nil {
		parents := m.Forest.Parents()
		out.Parents = make([]int, len(parents))
		for i, p := range parents {
			out.Parents[i] = int(p)
		}
	}
	out.KernelStep = make([]float64, m.M)
	out.KernelVals = make([][]float64, m.M)
	for i, k := range m.Kernels {
		d, ok := k.(*kernel.Discrete)
		if !ok {
			// Tabulate non-discrete kernels onto their support.
			var err error
			d, err = kernel.Sample(k, k.Support()/24, 25)
			if err != nil {
				return fmt.Errorf("core: serializing kernel %d: %w", i, err)
			}
		}
		out.KernelStep[i] = d.Step
		out.KernelVals[i] = d.Values
	}
	return json.NewEncoder(w).Encode(out)
}

// LoadModel deserializes a model saved by Save and rebinds it to its
// training sequence (the same one passed to Fit; Load validates the shape).
func LoadModel(r io.Reader, train *timeline.Sequence) (*Model, error) {
	var in modelJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("core: decoding model: %w", err)
	}
	if train == nil || train.M != in.M {
		return nil, errors.New("core: LoadModel needs the original training sequence")
	}
	if len(in.Parents) != train.Len() {
		return nil, fmt.Errorf("core: persisted forest covers %d activities, sequence has %d", len(in.Parents), train.Len())
	}
	link, err := in.Variant.Link()
	if err != nil {
		return nil, err
	}
	m := &Model{
		M: in.M, Variant: in.Variant, Horizon: in.Horizon,
		Mu: in.Mu, GammaI: in.GammaI, GammaN: in.GammaN,
		Beta: in.Beta, Alpha: in.Alpha,
		Kernels: make([]kernel.Kernel, in.M),
		cfg:     in.Config, link: link, seq: train,
		sources: in.Sources, Iterations: in.Iterations,
	}
	if m.GammaI == nil {
		m.GammaI = dense(in.M)
	}
	if m.GammaN == nil {
		m.GammaN = dense(in.M)
	}
	if m.Beta == nil {
		m.Beta = dense(in.M)
	}
	if m.Alpha == nil {
		m.Alpha = dense(in.M)
	}
	for i := range m.Kernels {
		d, err := kernel.NewDiscrete(in.KernelStep[i], in.KernelVals[i])
		if err != nil {
			return nil, fmt.Errorf("core: kernel %d: %w", i, err)
		}
		m.Kernels[i] = d
	}
	parents := make([]timeline.ActivityID, len(in.Parents))
	for i, p := range in.Parents {
		parents[i] = timeline.ActivityID(p)
	}
	m.Forest, err = branching.FromParents(parents)
	if err != nil {
		return nil, fmt.Errorf("core: persisted forest invalid: %w", err)
	}
	if m.Variant.ConformityAware {
		work := train.StripParents()
		m.Conf, err = conformity.New(work, m.Forest, m.cfg.Conformity)
		if err != nil {
			return nil, err
		}
	}
	return m, nil
}
