// Package cliobs wires the observability and lifecycle surface shared by
// the chassis CLIs: -progress (human-readable per-iteration fit lines on
// stderr), -metrics-json (one JSON snapshot per EM iteration, flushed as it
// completes), -pprof (a net/http/pprof endpoint), and SIGINT/SIGTERM-driven
// cooperative cancellation — the first signal cancels the context, the fit
// unwinds at the next parallel-chunk boundary, and the tool exits cleanly.
package cliobs

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"chassis/internal/cascade"
	"chassis/internal/dataio"
	"chassis/internal/obs"
)

// Flags holds the parsed shared observability flags. Register binds them to
// a FlagSet before flag.Parse; Start then activates whatever was set.
type Flags struct {
	Progress    bool
	MetricsJSON string
	Pprof       string
}

// Register declares -progress, -metrics-json, and -pprof on fs (the CLIs
// pass flag.CommandLine).
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.BoolVar(&f.Progress, "progress", false,
		"print per-iteration fit progress to stderr")
	fs.StringVar(&f.MetricsJSON, "metrics-json", "",
		"write one JSON metrics snapshot per EM iteration to this file")
	fs.StringVar(&f.Pprof, "pprof", "",
		"serve net/http/pprof on this address (e.g. localhost:6060)")
	return f
}

// Session is the activated observability state: a signal-cancelled context
// plus the observer/metrics registry the flags requested (both nil when the
// corresponding flags are off). Close releases everything; defer it in main.
type Session struct {
	// Ctx is cancelled by the first SIGINT/SIGTERM; thread it into every
	// fit/predict call so the tool unwinds cooperatively.
	Ctx context.Context
	// Observer chains the progress printer and the snapshot writer (nil when
	// neither flag is set).
	Observer obs.FitObserver
	// Metrics is the registry backing -metrics-json (nil without the flag).
	Metrics *obs.Metrics

	writer *obs.IterJSONWriter
	stop   context.CancelFunc
}

// Start activates the flags for a tool named label: installs the signal →
// context bridge, opens the snapshot file, starts the pprof server, and
// builds the observer chain.
func (f *Flags) Start(label string) (*Session, error) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	s := &Session{Ctx: ctx, stop: stop}
	var observers []obs.FitObserver
	if f.Progress {
		observers = append(observers, obs.ProgressObserver(os.Stderr, label))
	}
	if f.MetricsJSON != "" {
		w, err := obs.NewIterJSONWriter(f.MetricsJSON)
		if err != nil {
			stop()
			return nil, err
		}
		s.writer = w
		s.Metrics = obs.NewMetrics()
		w.Attach(s.Metrics)
		observers = append(observers, w)
	}
	if f.Pprof != "" {
		addr, err := obs.StartPprof(f.Pprof)
		if err != nil {
			s.Close()
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "%s: pprof listening on http://%s/debug/pprof/\n", label, addr)
	}
	if len(observers) > 0 {
		s.Observer = obs.Observers(observers...)
	}
	return s, nil
}

// Snapshots reports how many per-iteration lines -metrics-json has written.
func (s *Session) Snapshots() int {
	if s.writer == nil {
		return 0
	}
	return s.writer.Lines()
}

// Close restores the default signal behaviour and flushes the snapshot file.
// Safe to call more than once.
func (s *Session) Close() error {
	s.stop()
	w := s.writer
	s.writer = nil
	if w != nil {
		return w.Close()
	}
	return nil
}

// LoadDataset reads a dataset for a CLI. With repair=false it is strict
// (dataio.LoadDataset: any validation failure is a typed error); with
// repair=true dirty input is auto-repaired (stable sort, dedup, neutralize
// non-finite fields) and the repairs are summarized on stderr so silently
// cleaned data is never invisible.
func LoadDataset(path string, repair bool) (*cascade.Dataset, error) {
	if !repair {
		return dataio.LoadDataset(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ds, rep, err := dataio.ReadDatasetRepair(f)
	if err != nil {
		return nil, err
	}
	if rep.Changed() {
		fmt.Fprintf(os.Stderr, "repaired dataset %s: %s\n", ds.Name, rep)
	}
	return ds, nil
}

// ExitCode maps a run error to a process exit status, printing the error to
// w: cooperative cancellation (Ctrl-C) exits 130 — the conventional
// 128+SIGINT — while any other failure exits 1.
func ExitCode(w io.Writer, label string, err error) int {
	if err == nil {
		return 0
	}
	fmt.Fprintf(w, "%s: %v\n", label, err)
	if errors.Is(err, context.Canceled) {
		return 130
	}
	return 1
}
