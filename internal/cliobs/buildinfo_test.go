package cliobs

import (
	"flag"
	"strings"
	"testing"
)

func TestBuildinfoShape(t *testing.T) {
	bi := Buildinfo()
	if !strings.HasPrefix(bi, "chassis "+release+" go") {
		t.Errorf("Buildinfo = %q, want prefix %q", bi, "chassis "+release+" go")
	}
	if strings.ContainsAny(bi, "\n\r") {
		t.Errorf("Buildinfo must be one line, got %q", bi)
	}
}

func TestHandleVersion(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	show := RegisterVersion(fs)
	if err := fs.Parse([]string{"-version"}); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if !HandleVersion(&b, "chassis-serve", *show) {
		t.Fatal("HandleVersion should report exit when -version is set")
	}
	if !strings.HasPrefix(b.String(), "chassis-serve: chassis ") {
		t.Errorf("unexpected -version output %q", b.String())
	}
	b.Reset()
	if HandleVersion(&b, "chassis-serve", false) {
		t.Fatal("HandleVersion must be a no-op without the flag")
	}
	if b.Len() != 0 {
		t.Errorf("no-op HandleVersion wrote %q", b.String())
	}
}
