package cliobs

import (
	"flag"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
)

// release is the human-facing version stamped into every chassis binary's
// -version output and the serve API's /healthz payload. Bumped with the
// serving subsystem; bump it again whenever a release-worthy surface
// changes.
const release = "0.4.0"

// Buildinfo returns the one-line build identity shared by all five chassis
// binaries (chassis-sim, chassis-fit, chassis-predict, chassis-bench,
// chassis-serve): release, Go toolchain, platform, and — when the binary
// was built from a VCS checkout — the revision and dirty flag.
func Buildinfo() string {
	s := fmt.Sprintf("chassis %s %s %s/%s", release, runtime.Version(), runtime.GOOS, runtime.GOARCH)
	if bi, ok := debug.ReadBuildInfo(); ok {
		var rev, modified string
		for _, kv := range bi.Settings {
			switch kv.Key {
			case "vcs.revision":
				rev = kv.Value
			case "vcs.modified":
				if kv.Value == "true" {
					modified = "+dirty"
				}
			}
		}
		if rev != "" {
			if len(rev) > 12 {
				rev = rev[:12]
			}
			s += " (" + rev + modified + ")"
		}
	}
	return s
}

// RegisterVersion declares the shared -version flag on fs; pass the result
// to HandleVersion right after flag.Parse.
func RegisterVersion(fs *flag.FlagSet) *bool {
	return fs.Bool("version", false, "print build information and exit")
}

// HandleVersion prints the build identity for a tool named label when the
// -version flag was set, reporting whether the caller should exit.
func HandleVersion(w io.Writer, label string, show bool) bool {
	if !show {
		return false
	}
	fmt.Fprintf(w, "%s: %s\n", label, Buildinfo())
	return true
}
