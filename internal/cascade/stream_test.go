package cascade

import (
	"math"
	"path/filepath"
	"strings"
	"testing"

	"chassis/internal/colstore"
	"chassis/internal/rng"
	"chassis/internal/stance"
	"chassis/internal/timeline"
)

// streamCfg is a small-but-nontrivial configuration for streaming tests:
// big enough that cascades interleave and multiple batches flush.
func streamCfg(seed int64) Config {
	return Config{
		Name: "stream-unit", M: 300, Horizon: 800, Seed: seed,
		Graph: BarabasiAlbert, GraphDegree: 3, Reciprocity: 0.6,
		Topics:     3,
		BaseRateLo: 0.004, BaseRateHi: 0.012,
		KernelRate: 0.9, KernelKind: "rayleigh", TargetBranching: 0.55,
		ConformityWeight: 0.7, PolarityNoise: 0.18, LikeFraction: 0.25,
	}
}

func collectStream(t *testing.T, cfg Config, batch int) ([]timeline.Activity, *StreamStats) {
	t.Helper()
	var acts []timeline.Activity
	stats, err := GenerateStream(cfg, batch, func(b []timeline.Activity) error {
		acts = append(acts, b...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return acts, stats
}

// TestGenerateStreamWellFormed checks the structural invariants the colstore
// writer and the fit rely on: chronological order, global IDs, parents that
// are earlier events, topics inherited down cascades, and analyzer-assigned
// polarities.
func TestGenerateStreamWellFormed(t *testing.T) {
	cfg := streamCfg(17)
	acts, stats := collectStream(t, cfg, 256)
	if stats.Events != len(acts) {
		t.Fatalf("stats report %d events, emitted %d", stats.Events, len(acts))
	}
	if stats.Events < 500 {
		t.Fatalf("corpus suspiciously small: %d events", stats.Events)
	}
	if stats.Truncated {
		t.Fatal("unexpected MaxEvents truncation")
	}
	analyzer := stance.NewAnalyzer()
	var immigrants int
	for k, a := range acts {
		if int(a.ID) != k {
			t.Fatalf("event %d carries ID %d", k, a.ID)
		}
		if k > 0 && a.Time < acts[k-1].Time {
			t.Fatalf("event %d breaks chronological order", k)
		}
		if a.Time < 0 || a.Time > cfg.Horizon {
			t.Fatalf("event %d outside the horizon: t=%g", k, a.Time)
		}
		if a.User < 0 || int(a.User) >= cfg.M {
			t.Fatalf("event %d has user %d outside [0,%d)", k, a.User, cfg.M)
		}
		if a.Topic < 0 || a.Topic >= cfg.Topics {
			t.Fatalf("event %d has topic %d outside [0,%d)", k, a.Topic, cfg.Topics)
		}
		if a.IsImmigrant() {
			immigrants++
			if a.Kind != timeline.Post {
				t.Fatalf("immigrant %d has kind %v", k, a.Kind)
			}
		} else {
			if int(a.Parent) >= k {
				t.Fatalf("event %d has parent %d (not earlier)", k, a.Parent)
			}
			if p := acts[a.Parent]; p.Topic != a.Topic {
				t.Fatalf("event %d topic %d differs from parent topic %d", k, a.Topic, p.Topic)
			}
			if a.Kind == timeline.Post {
				t.Fatalf("offspring %d has kind Post", k)
			}
		}
		if a.Kind.Explicit() && a.Text != "" {
			t.Fatalf("explicit reaction %d carries text %q", k, a.Text)
		}
		if got, want := a.Polarity, analyzer.ActivityPolarity(a); got != want {
			t.Fatalf("event %d polarity %g, analyzer says %g", k, got, want)
		}
	}
	if immigrants != stats.Immigrants {
		t.Fatalf("stats report %d immigrants, counted %d", stats.Immigrants, immigrants)
	}
	// The branching identity: total ≈ immigrants / (1 − b). With b = 0.55
	// the offspring share should be well away from both 0 and 1.
	frac := 1 - float64(immigrants)/float64(len(acts))
	if frac < 0.3 || frac > 0.75 {
		t.Errorf("offspring fraction %.2f implausible for branching 0.55", frac)
	}
	if stats.PeakPending <= 0 || stats.PeakPending >= len(acts) {
		t.Errorf("peak pending %d outside (0,%d)", stats.PeakPending, len(acts))
	}
	// A sequence assembled from the stream passes the repo-wide validator.
	seq := &timeline.Sequence{M: cfg.M, Horizon: cfg.Horizon, Activities: acts}
	if err := seq.Validate(); err != nil {
		t.Fatalf("streamed sequence fails validation: %v", err)
	}
}

// TestGenerateStreamDeterministic: same seed, same corpus — and the batch
// size must only group the output, never change it.
func TestGenerateStreamDeterministic(t *testing.T) {
	cfg := streamCfg(18)
	a1, s1 := collectStream(t, cfg, 64)
	a2, s2 := collectStream(t, cfg, 1000)
	if *s1 != *s2 {
		t.Fatalf("stats differ across batch sizes: %+v vs %+v", s1, s2)
	}
	if len(a1) != len(a2) {
		t.Fatalf("event counts differ: %d vs %d", len(a1), len(a2))
	}
	for k := range a1 {
		if a1[k] != a2[k] {
			t.Fatalf("event %d differs across batch sizes:\n%+v\n%+v", k, a1[k], a2[k])
		}
	}
	a3, _ := collectStream(t, streamCfg(19), 64)
	if len(a1) == len(a3) {
		same := true
		for k := range a1 {
			if a1[k] != a3[k] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical corpora")
		}
	}
}

// TestGenerateStreamToColstore streams straight into a colstore writer —
// the paper-scale pipeline in miniature — and checks the file round-trips.
func TestGenerateStreamToColstore(t *testing.T) {
	cfg := streamCfg(20)
	path := filepath.Join(t.TempDir(), "stream.colstore")
	w, err := colstore.Create(path, colstore.Meta{Name: cfg.Name, M: cfg.M, Horizon: cfg.Horizon})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := GenerateStream(cfg, 512, w.Append)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rd, err := colstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	if rd.NumEvents() != stats.Events {
		t.Fatalf("colstore holds %d events, stats report %d", rd.NumEvents(), stats.Events)
	}
	acts, _ := collectStream(t, cfg, 512)
	seq, err := rd.Sequence()
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Activities) != len(acts) {
		t.Fatalf("round-trip count %d, want %d", len(seq.Activities), len(acts))
	}
	for k := range acts {
		if seq.Activities[k] != acts[k] {
			t.Fatalf("event %d corrupted by colstore round-trip:\n%+v\n%+v", k, seq.Activities[k], acts[k])
		}
	}
}

// TestGenerateStreamMaxEvents pins the truncation path: the cap stops
// emission exactly, and what was emitted is still well-formed.
func TestGenerateStreamMaxEvents(t *testing.T) {
	cfg := streamCfg(21)
	cfg.MaxEvents = 200
	acts, stats := collectStream(t, cfg, 64)
	if !stats.Truncated {
		t.Fatal("cap of 200 events should truncate this corpus")
	}
	if len(acts) != 200 {
		t.Fatalf("emitted %d events, cap is 200", len(acts))
	}
	for k, a := range acts {
		if !a.IsImmigrant() && int(a.Parent) >= k {
			t.Fatalf("truncated corpus has forward parent at %d", k)
		}
	}
}

// TestGenerateStreamRejects covers the unsupported-feature gates.
func TestGenerateStreamRejects(t *testing.T) {
	cfg := streamCfg(22)
	cfg.LinkName = "exp"
	if _, err := GenerateStream(cfg, 0, func([]timeline.Activity) error { return nil }); err == nil || !strings.Contains(err.Error(), "linear") {
		t.Fatalf("exp link: got %v, want linear-only error", err)
	}
	if _, err := GenerateStream(streamCfg(23), 0, nil); err == nil {
		t.Fatal("nil emit callback must fail")
	}
	bad := streamCfg(24)
	bad.M = 1
	if _, err := GenerateStream(bad, 0, func([]timeline.Activity) error { return nil }); err == nil {
		t.Fatal("invalid config must fail")
	}
}

// TestSampleDelayMatchesKernel cross-checks the inverse-CDF samplers
// against the kernel package's Integral forms: the empirical CDF at the
// kernel's median must sit near 0.5.
func TestSampleDelayMatchesKernel(t *testing.T) {
	for _, kind := range []string{"exp", "rayleigh", "powerlaw"} {
		cfg := Config{KernelRate: 0.9, KernelKind: kind}
		ker, err := cfg.buildKernel()
		if err != nil {
			t.Fatal(err)
		}
		// Median by bisection on the kernel's own CDF.
		lo, hi := 0.0, ker.Support()
		for range 80 {
			mid := (lo + hi) / 2
			if ker.Integral(mid) < 0.5 {
				lo = mid
			} else {
				hi = mid
			}
		}
		median := (lo + hi) / 2
		r := rng.New(int64(len(kind)) * 1009)
		const n = 20000
		var below int
		for range n {
			if sampleDelay(r, kind, cfg.KernelRate) <= median {
				below++
			}
		}
		if p := float64(below) / n; math.Abs(p-0.5) > 0.02 {
			t.Errorf("%s: %.3f of samples below the kernel median, want ~0.5", kind, p)
		}
	}
}
