// Package cascade generates the synthetic social-activity corpora this
// reproduction uses in place of the paper's proprietary Facebook/Twitter
// crawls and the PHEME rumour dataset (see DESIGN.md §2 for the
// substitution argument).
//
// The generator simulates a *conformity-aware* multivariate Hawkes process
// over a follower graph: each user carries a latent opinion per topic and a
// conformity trait; the ground-truth excitation combines graph structure
// with opinion similarity and the receiver's conformity, and offspring
// polarities blend the parent's expressed polarity with the responder's own
// opinion in proportion to that trait. Activities are rendered to text so
// the stance analyzer has realistic work to do. The result is a corpus in
// which conformity genuinely shapes the diffusion — so conformity-aware
// models can win for the same reason they do on the paper's real data —
// with full ground truth (influence matrix, diffusion trees, opinions)
// retained for evaluation.
package cascade

import (
	"errors"
	"fmt"
	"math"

	"chassis/internal/hawkes"
	"chassis/internal/kernel"
	"chassis/internal/rng"
	"chassis/internal/socialnet"
	"chassis/internal/stance"
	"chassis/internal/timeline"
)

// GraphKind selects the follower-graph topology.
type GraphKind int

// Supported topologies.
const (
	BarabasiAlbert GraphKind = iota
	ErdosRenyi
	WattsStrogatz
)

// Config parameterizes one synthetic corpus.
type Config struct {
	Name string
	// M is the number of users (dimensions).
	M int
	// Horizon is the observation window length.
	Horizon float64
	// Seed drives every random choice; same seed, same corpus.
	Seed int64
	// Graph topology and density knobs.
	Graph       GraphKind
	GraphDegree int     // BA attachment count / WS neighbor count
	GraphProb   float64 // ER edge probability / WS rewire probability
	Reciprocity float64 // BA reciprocal-follow probability
	// Topics is how many discussion contexts users hold opinions on.
	Topics int
	// BaseRateLo/Hi bound the per-user exogenous intensity μᵢ.
	BaseRateLo, BaseRateHi float64
	// KernelRate sets the triggering-kernel time scale (decay rate for
	// "exp"; 1/KernelRate is the Rayleigh σ and the power-law cutoff).
	KernelRate float64
	// KernelKind selects the ground-truth triggering kernel: "exp"
	// (default), "rayleigh" (delayed peak — responses take time to arrive,
	// as on real platforms), or "powerlaw" (heavy tail). Non-exponential
	// kernels are what penalize fixed-exponential baselines (ADM4) on real
	// data; the presets use "rayleigh" for that reason.
	KernelKind string
	// TargetBranching rescales the ground-truth excitation so the mean
	// column mass (expected offspring per event) hits this value; must be
	// < 1 to keep the process subcritical.
	TargetBranching float64
	// LinkName selects the ground-truth link Fᵢ: "linear" (default) or
	// "exp". With "exp" the diffusion is mildly nonlinear — bursts compound
	// multiplicatively — matching the paper's finding that nonlinear Hawkes
	// captures real social streams better; base rates are mapped through
	// μᵢ = ln(rate) so the exogenous level is preserved.
	LinkName string
	// ConformityWeight in [0,1] is how strongly the receiver's conformity
	// trait and opinion similarity modulate excitation (0 = structure
	// only; the conformity-unaware control).
	ConformityWeight float64
	// PolarityNoise is the stddev of the noise on expressed polarities.
	PolarityNoise float64
	// LikeFraction of offspring become explicit reactions (Like/Angry).
	LikeFraction float64
	// MaxEvents caps a runaway simulation.
	MaxEvents int
}

func (c *Config) fill() error {
	if c.M <= 1 {
		return fmt.Errorf("cascade: need at least 2 users, got %d", c.M)
	}
	if c.Horizon <= 0 {
		return errors.New("cascade: horizon must be positive")
	}
	if c.Topics <= 0 {
		c.Topics = 1
	}
	if c.GraphDegree <= 0 {
		c.GraphDegree = 3
	}
	if c.BaseRateHi <= 0 {
		c.BaseRateLo, c.BaseRateHi = 0.002, 0.01
	}
	if c.KernelRate <= 0 {
		c.KernelRate = 1.0
	}
	if c.TargetBranching <= 0 {
		c.TargetBranching = 0.6
	}
	if c.TargetBranching >= 0.95 {
		return fmt.Errorf("cascade: target branching %g too close to criticality", c.TargetBranching)
	}
	if c.ConformityWeight < 0 || c.ConformityWeight > 1 {
		return fmt.Errorf("cascade: conformity weight %g outside [0,1]", c.ConformityWeight)
	}
	if c.PolarityNoise < 0 {
		return errors.New("cascade: polarity noise must be non-negative")
	}
	if c.LikeFraction < 0 || c.LikeFraction > 1 {
		return errors.New("cascade: like fraction must be in [0,1]")
	}
	if c.MaxEvents <= 0 {
		c.MaxEvents = 500_000
	}
	switch c.LinkName {
	case "":
		c.LinkName = "linear"
	case "linear", "exp":
	default:
		return fmt.Errorf("cascade: unsupported ground-truth link %q", c.LinkName)
	}
	switch c.KernelKind {
	case "":
		c.KernelKind = "exp"
	case "exp", "rayleigh", "powerlaw":
	default:
		return fmt.Errorf("cascade: unsupported kernel kind %q", c.KernelKind)
	}
	return nil
}

// buildKernel materializes the configured ground-truth triggering kernel.
func (c *Config) buildKernel() (kernel.Kernel, error) {
	switch c.KernelKind {
	case "rayleigh":
		return kernel.NewRayleigh(1 / c.KernelRate)
	case "powerlaw":
		return kernel.NewPowerLaw(1/c.KernelRate, 2.5)
	default:
		return kernel.NewExponential(c.KernelRate)
	}
}

// Dataset is a fully ground-truthed synthetic corpus.
type Dataset struct {
	Name string
	// Seq holds the activities with times, kinds, text, analyzer-assigned
	// polarities, and ground-truth parents.
	Seq *timeline.Sequence
	// Graph is the follower graph the corpus was simulated over.
	Graph *socialnet.Graph
	// Influence is the ground-truth excitation matrix A (RankCorr truth).
	Influence [][]float64
	// Opinions[u][topic] is user u's latent opinion in [-1, 1].
	Opinions [][]float64
	// Conformity[u] is user u's latent conformity trait in [0, 1].
	Conformity []float64
}

// Generate builds a corpus from the configuration.
func Generate(cfg Config) (*Dataset, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	r := rng.New(cfg.Seed)
	graph, err := buildGraph(r.Split(1), cfg)
	if err != nil {
		return nil, err
	}

	// Latent traits.
	rTraits := r.Split(2)
	opinions := make([][]float64, cfg.M)
	conformityTrait := make([]float64, cfg.M)
	for u := 0; u < cfg.M; u++ {
		opinions[u] = make([]float64, cfg.Topics)
		for k := range opinions[u] {
			opinions[u][k] = rTraits.Uniform(-1, 1)
		}
		conformityTrait[u] = rTraits.Float64()
	}

	// Ground-truth excitation: follower edge × (structure + conformity
	// modulation), rescaled to the target branching ratio.
	a := graph.InfluenceMatrix(1)
	for i := 0; i < cfg.M; i++ {
		for j := 0; j < cfg.M; j++ {
			if a[i][j] == 0 {
				continue
			}
			sim := opinionSimilarity(opinions[i], opinions[j])
			mod := (1 - cfg.ConformityWeight) + cfg.ConformityWeight*conformityTrait[i]*sim
			a[i][j] = mod
		}
	}
	colCap := 0.92
	if cfg.LinkName == "linear" && cfg.ConformityWeight > 0 {
		// The dynamic conformity ramp can multiply a hot pair's excitation
		// by up to dynamicHotCap; budget the per-column stability cap for
		// the worst case so the process stays subcritical throughout.
		colCap /= 1 + (dynamicHotCap-1)*cfg.ConformityWeight
	}
	rescaleToBranching(a, cfg.TargetBranching, colCap)

	exc, err := hawkes.NewConstExcitation(a)
	if err != nil {
		return nil, err
	}
	ker, err := cfg.buildKernel()
	if err != nil {
		return nil, err
	}
	mu := make([]float64, cfg.M)
	rMu := r.Split(3)
	var link hawkes.Link = hawkes.LinearLink{}
	for i := range mu {
		mu[i] = rMu.Uniform(cfg.BaseRateLo, cfg.BaseRateHi)
	}
	if cfg.LinkName == "exp" {
		link = hawkes.ExpLink{}
		for i := range mu {
			mu[i] = math.Log(mu[i])
		}
	}
	var seq *timeline.Sequence
	if cfg.LinkName == "linear" && cfg.ConformityWeight > 0 {
		// Conformity-dynamic ground truth: pair excitation ramps with the
		// pair's own interaction history (see dynamics.go). This is the
		// time-varying structure CHASSIS models and static-α baselines can
		// only average over.
		seq, err = simulateDynamic(r.Split(4), cfg, mu, a, ker)
	} else {
		proc := &hawkes.Process{
			M: cfg.M, Mu: mu, Exc: exc,
			Kernels: hawkes.SharedKernel{K: ker},
			Link:    link,
		}
		seq, err = proc.Simulate(r.Split(4), hawkes.SimOptions{Horizon: cfg.Horizon, MaxEvents: cfg.MaxEvents})
	}
	if err != nil {
		return nil, fmt.Errorf("cascade: simulating %s: %w", cfg.Name, err)
	}

	dressActivities(r.Split(5), seq, cfg, opinions, conformityTrait)

	// Polarity as downstream consumers see it: re-derived from the
	// rendered content by the stance analyzer (explicit reactions
	// short-circuit). Ground-truth latent opinions stay in the dataset.
	analyzer := stance.NewAnalyzer()
	for i := range seq.Activities {
		seq.Activities[i].Polarity = 0
	}
	analyzer.AnnotateSequence(seq)

	return &Dataset{
		Name: cfg.Name, Seq: seq, Graph: graph, Influence: a,
		Opinions: opinions, Conformity: conformityTrait,
	}, nil
}

func buildGraph(r *rng.RNG, cfg Config) (*socialnet.Graph, error) {
	switch cfg.Graph {
	case BarabasiAlbert:
		return socialnet.BarabasiAlbert(r, cfg.M, cfg.GraphDegree, cfg.Reciprocity)
	case ErdosRenyi:
		p := cfg.GraphProb
		if p <= 0 {
			p = math.Min(1, float64(2*cfg.GraphDegree)/float64(cfg.M))
		}
		return socialnet.ErdosRenyi(r, cfg.M, p)
	case WattsStrogatz:
		beta := cfg.GraphProb
		if beta <= 0 {
			beta = 0.1
		}
		return socialnet.WattsStrogatz(r, cfg.M, cfg.GraphDegree, beta)
	}
	return nil, fmt.Errorf("cascade: unknown graph kind %d", cfg.Graph)
}

// opinionSimilarity maps mean per-topic opinion distance to [0, 1].
func opinionSimilarity(a, b []float64) float64 {
	var d float64
	for k := range a {
		d += math.Abs(a[k] - b[k])
	}
	d /= float64(len(a))
	return 1 - d/2 // distances span [0, 2]
}

// rescaleToBranching scales the matrix so the *mean* nonzero column sum
// (the typical per-event offspring count; kernels have unit mass so column
// sums are branching ratios) equals the target, then clips any column —
// heavy-tailed graphs have hub users — whose sum would exceed the
// subcriticality cap. The spectral radius of a non-negative matrix is
// bounded by its largest column sum, so the clip keeps the linear process
// stable.
func rescaleToBranching(a [][]float64, target, cap float64) {
	m := len(a)
	colSum := make([]float64, m)
	var total float64
	var nonzero int
	for j := 0; j < m; j++ {
		for i := 0; i < m; i++ {
			colSum[j] += a[i][j]
		}
		if colSum[j] > 0 {
			total += colSum[j]
			nonzero++
		}
	}
	if nonzero == 0 || total <= 0 {
		return
	}
	scale := target / (total / float64(nonzero))
	for j := 0; j < m; j++ {
		s := scale
		if colSum[j]*scale > cap {
			s = cap / colSum[j]
		}
		for i := 0; i < m; i++ {
			a[i][j] *= s
		}
	}
}

// dressActivities assigns topics, kinds, expressed polarities, and rendered
// text. Immigrant posts express the author's own opinion; offspring blend
// the parent's expressed polarity with the responder's opinion weighted by
// the responder's conformity trait — the generative mirror of the
// conformity CHASSIS extracts.
func dressActivities(r *rng.RNG, seq *timeline.Sequence, cfg Config, opinions [][]float64, trait []float64) {
	expressed := make([]float64, len(seq.Activities))
	topicOf := make([]int, len(seq.Activities))
	for k := range seq.Activities {
		act := &seq.Activities[k]
		u := int(act.User)
		if act.IsImmigrant() {
			topic := r.Intn(cfg.Topics)
			topicOf[k] = topic
			act.Topic = topic
			act.Kind = timeline.Post
			expressed[k] = clampPolarity(opinions[u][topic] + r.Normal(0, cfg.PolarityNoise))
			act.Text = renderText(r, expressed[k], true)
			continue
		}
		parent := int(act.Parent)
		topic := topicOf[parent]
		topicOf[k] = topic
		act.Topic = topic
		c := trait[u]
		raw := (1-c)*opinions[u][topic] + c*expressed[parent] + r.Normal(0, cfg.PolarityNoise)
		expressed[k] = clampPolarity(raw)
		if r.Bernoulli(cfg.LikeFraction) {
			if expressed[k] >= 0 {
				act.Kind = timeline.Like
			} else {
				act.Kind = timeline.Angry
			}
			act.Text = ""
			continue
		}
		switch r.Intn(3) {
		case 0:
			act.Kind = timeline.Retweet
		case 1:
			act.Kind = timeline.Comment
		default:
			act.Kind = timeline.Reply
		}
		act.Text = renderText(r, expressed[k], false)
	}
}

func clampPolarity(p float64) float64 {
	if p > 1 {
		return 1
	}
	if p < -1 {
		return -1
	}
	return p
}
