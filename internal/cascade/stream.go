package cascade

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"sort"

	"chassis/internal/rng"
	"chassis/internal/stance"
	"chassis/internal/timeline"
)

// Streaming generation: the same conformity-modulated Hawkes family as
// Generate, built by the exact cluster (branching) construction instead of
// intensity thinning, so a paper-scale corpus — hundreds of thousands of
// activities over ~10⁵ users — streams out in chronological order with
// bounded memory and no dense M×M influence matrix ever materializing.
//
// The construction exploits the cluster representation of a linear Hawkes
// process: immigrants arrive as a Poisson process with rate Σᵢ μᵢ, and each
// event by user j independently spawns Poisson(aᵢⱼ) offspring for every
// follower i, at delays drawn from the normalized triggering kernel. Only
// the sparse follower lists and their conformity-modulated weights are kept
// (O(edges)); the frontier of not-yet-emitted offspring lives in a priority
// queue whose peak size is reported in StreamStats so tests can pin the
// memory bound.
//
// Two features of Generate are out of scope for the streaming path and
// rejected up front: the nonlinear ("exp" link) diffusion, which has no
// cluster representation, and the dynamic conformity ramp of
// simulateDynamic, which would require unbounded per-pair history. The
// streamed family is the static-excitation linear process — exactly the
// subset core.FitSharded fits out-of-core.

// StreamStats summarizes one streamed generation run.
type StreamStats struct {
	// Events is how many activities were emitted.
	Events int
	// Immigrants is how many of them were exogenous posts.
	Immigrants int
	// PeakPending is the high-water mark of the not-yet-emitted offspring
	// queue — the generator's only corpus-shaped state.
	PeakPending int
	// Truncated reports that MaxEvents fired before the horizon drained.
	Truncated bool
}

// pendingEvent is one simulated-but-not-yet-emitted activity. Offspring
// carry their parent's emitted global index plus the two pieces of cascade
// state dressing needs: the topic and the parent's expressed polarity.
type pendingEvent struct {
	time   float64
	seq    int64 // insertion order; tie-break so heap order is deterministic
	user   int32
	parent int32 // global index of the emitted parent; -1 for immigrants
	topic  int32
	parPol float64 // parent's expressed (latent) polarity
}

// eventHeap orders pending events by (time, insertion seq).
type eventHeap []pendingEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(pendingEvent)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// sampleDelay draws an offspring delay from the normalized triggering
// kernel by inverse CDF; all three parametric kinds invert in closed form
// (the CDFs are the kernel.Kernel Integral forms with unit mass).
func sampleDelay(r *rng.RNG, kind string, rate float64) float64 {
	switch kind {
	case "rayleigh":
		// F(t) = 1 − exp(−t²/2σ²), σ = 1/rate.
		sigma := 1 / rate
		return sigma * math.Sqrt(-2*math.Log(1-r.Float64()))
	case "powerlaw":
		// F(t) = 1 − (1+t/c)^{1−p}, c = 1/rate, p = 2.5 (cf. buildKernel).
		cutoff := 1 / rate
		return cutoff * (math.Pow(1-r.Float64(), 1/(1-2.5)) - 1)
	default:
		return r.Exp(rate)
	}
}

// GenerateStream simulates cfg's corpus by the cluster construction and
// hands activities to emit in global chronological order, in batches of at
// most batchSize (default 4096). Activity IDs and parent references are
// global emission indices, so batches feed colstore.Writer.Append directly.
// The emitted corpus is deterministic in cfg.Seed and independent of
// batchSize. Ground-truth latent traits are not returned — at paper scale
// they are the caller's to regenerate from the seed if needed.
func GenerateStream(cfg Config, batchSize int, emit func([]timeline.Activity) error) (*StreamStats, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if emit == nil {
		return nil, errors.New("cascade: GenerateStream needs an emit callback")
	}
	if cfg.LinkName != "linear" {
		return nil, fmt.Errorf("cascade: streaming generation supports only the linear link (no cluster representation exists for %q)", cfg.LinkName)
	}
	if batchSize <= 0 {
		batchSize = 4096
	}

	r := rng.New(cfg.Seed)
	g, err := buildGraph(r.Split(1), cfg)
	if err != nil {
		return nil, err
	}

	// Latent traits — same stream and draw order as Generate.
	rTraits := r.Split(2)
	opinions := make([][]float64, cfg.M)
	trait := make([]float64, cfg.M)
	for u := 0; u < cfg.M; u++ {
		opinions[u] = make([]float64, cfg.Topics)
		for k := range opinions[u] {
			opinions[u][k] = rTraits.Uniform(-1, 1)
		}
		trait[u] = rTraits.Float64()
	}

	// Sparse excitation: per-source follower targets with conformity-
	// modulated weights, rescaled so the mean nonzero column mass hits
	// TargetBranching with the same per-column subcriticality cap as the
	// dense path. This is rescaleToBranching on a column-sparse layout.
	targets := make([][]int, cfg.M)
	weights := make([][]float64, cfg.M)
	var total float64
	var nonzero int
	for j := 0; j < cfg.M; j++ {
		fs := g.Followers(j)
		if len(fs) == 0 {
			continue
		}
		ws := make([]float64, len(fs))
		var col float64
		for k, i := range fs {
			sim := opinionSimilarity(opinions[i], opinions[j])
			ws[k] = (1 - cfg.ConformityWeight) + cfg.ConformityWeight*trait[i]*sim
			col += ws[k]
		}
		targets[j], weights[j] = fs, ws
		total += col
		nonzero++
	}
	if nonzero > 0 && total > 0 {
		scale := cfg.TargetBranching / (total / float64(nonzero))
		for j := range weights {
			var col float64
			for _, w := range weights[j] {
				col += w
			}
			s := scale
			if col*scale > streamColCap {
				s = streamColCap / col
			}
			for k := range weights[j] {
				weights[j][k] *= s
			}
		}
	}

	// Exogenous rates and the immigrant-assignment cumulative table.
	rMu := r.Split(3)
	mu := make([]float64, cfg.M)
	cum := make([]float64, cfg.M)
	var lambda float64
	for i := range mu {
		mu[i] = rMu.Uniform(cfg.BaseRateLo, cfg.BaseRateHi)
		lambda += mu[i]
		cum[i] = lambda
	}

	rSim := r.Split(4)
	rImm, rOff := rSim.Split(1), rSim.Split(2)
	rDress := r.Split(5)
	analyzer := stance.NewAnalyzer()

	nextImmigrant := func(after float64) (float64, int32) {
		t := after + rImm.Exp(lambda)
		u := sort.SearchFloat64s(cum, rImm.Float64()*lambda)
		if u >= cfg.M {
			u = cfg.M - 1
		}
		return t, int32(u)
	}

	var (
		pend       eventHeap
		seqNo      int64
		stats      StreamStats
		batch      = make([]timeline.Activity, 0, batchSize)
		immT, immU = nextImmigrant(0)
		immOK      = immT <= cfg.Horizon
	)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := emit(batch); err != nil {
			return err
		}
		batch = batch[:0]
		return nil
	}

	for stats.Events < cfg.MaxEvents {
		var ev pendingEvent
		switch {
		case immOK && (len(pend) == 0 || immT <= pend[0].time):
			ev = pendingEvent{time: immT, user: immU, parent: -1}
			stats.Immigrants++
			immT, immU = nextImmigrant(immT)
			immOK = immT <= cfg.Horizon
		case len(pend) > 0:
			ev = heap.Pop(&pend).(pendingEvent)
		default:
			// Horizon drained: no pending offspring, no immigrants left.
			if err := flush(); err != nil {
				return nil, err
			}
			return &stats, nil
		}

		// Dress and emit — the same per-activity logic as dressActivities,
		// with cascade state (topic, parent's expressed polarity) carried on
		// the pending event instead of corpus-length arrays.
		gIdx := stats.Events
		act := timeline.Activity{
			ID:   timeline.ActivityID(gIdx),
			User: timeline.UserID(ev.user),
			Time: ev.time,
		}
		var expressed float64
		var topic int32
		if ev.parent < 0 {
			topic = int32(rDress.Intn(cfg.Topics))
			act.Parent = timeline.NoParent
			act.Kind = timeline.Post
			expressed = clampPolarity(opinions[ev.user][topic] + rDress.Normal(0, cfg.PolarityNoise))
			act.Text = renderText(rDress, expressed, true)
		} else {
			topic = ev.topic
			act.Parent = timeline.ActivityID(ev.parent)
			c := trait[ev.user]
			expressed = clampPolarity((1-c)*opinions[ev.user][topic] + c*ev.parPol + rDress.Normal(0, cfg.PolarityNoise))
			if rDress.Bernoulli(cfg.LikeFraction) {
				if expressed >= 0 {
					act.Kind = timeline.Like
				} else {
					act.Kind = timeline.Angry
				}
			} else {
				switch rDress.Intn(3) {
				case 0:
					act.Kind = timeline.Retweet
				case 1:
					act.Kind = timeline.Comment
				default:
					act.Kind = timeline.Reply
				}
				act.Text = renderText(rDress, expressed, false)
			}
		}
		act.Topic = int(topic)
		act.Polarity = analyzer.ActivityPolarity(act)
		batch = append(batch, act)
		stats.Events++
		if len(batch) >= batchSize {
			if err := flush(); err != nil {
				return nil, err
			}
		}

		// Offspring: Poisson(aᵢⱼ) children per follower, delays from the
		// normalized kernel; children past the horizon are dropped (their
		// mass is the boundary truncation every finite-window corpus has).
		u := int(ev.user)
		for k, i := range targets[u] {
			for n := rOff.Poisson(weights[u][k]); n > 0; n-- {
				t := ev.time + sampleDelay(rOff, cfg.KernelKind, cfg.KernelRate)
				if t > cfg.Horizon {
					continue
				}
				seqNo++
				heap.Push(&pend, pendingEvent{
					time: t, seq: seqNo, user: int32(i),
					parent: int32(gIdx), topic: topic, parPol: expressed,
				})
			}
		}
		if len(pend) > stats.PeakPending {
			stats.PeakPending = len(pend)
		}
	}
	stats.Truncated = true
	if err := flush(); err != nil {
		return nil, err
	}
	return &stats, nil
}

// streamColCap mirrors the dense path's per-column subcriticality cap; the
// streaming family has no dynamic ramp, so no extra headroom is budgeted.
const streamColCap = 0.92
