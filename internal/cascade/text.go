package cascade

import (
	"strings"

	"chassis/internal/rng"
)

// Text rendering: templates whose sentiment-bearing slots draw from
// vocabulary the stance analyzer's lexicon covers (plus distractors it does
// not), so the analyzer recovers a noisy version of the expressed polarity
// — the same signal/noise structure NLTK sees on real posts.

var (
	strongPositive = []string{"amazing", "fantastic", "brilliant", "masterpiece", "outstanding", "phenomenal", "incredible", "superb"}
	mildPositive   = []string{"good", "nice", "solid", "enjoyable", "fun", "decent", "cool", "helpful"}
	strongNegative = []string{"terrible", "awful", "horrible", "disgusting", "pathetic", "unwatchable", "disaster"}
	mildNegative   = []string{"boring", "weak", "mediocre", "bland", "disappointing", "flawed", "dull"}
	neutralWords   = []string{"report", "update", "thread", "coverage", "footage", "statement", "details", "story"}
	subjects       = []string{"this movie", "the news", "that article", "the match", "this story", "the announcement", "her post", "his take"}
	positiveTails  = []string{"loved it", "highly recommend", "so happy about it", "great stuff", "totally agree", ":)", "well worth it"}
	negativeTails  = []string{"what a mess", "cannot believe this", "such a letdown", "do not trust it", ":(", "complete waste", "avoid it"}
	neutralTails   = []string{"more details soon", "still reading", "sharing for visibility", "thoughts?", "as reported", "see thread"}
	openers        = []string{"honestly", "wow", "ok so", "just saw", "breaking", "fwiw", "hm", "so"}
)

func pick(r *rng.RNG, xs []string) string { return xs[r.Intn(len(xs))] }

// renderText produces a post or response whose lexical sentiment tracks the
// expressed polarity. Intensity buckets: |p| > 0.55 strong, > 0.15 mild,
// else neutral. Negated constructions ("not good") appear occasionally so
// the analyzer's negation path is exercised by real data.
func renderText(r *rng.RNG, polarity float64, isPost bool) string {
	var parts []string
	if r.Bernoulli(0.4) {
		parts = append(parts, pick(r, openers))
	}
	subject := pick(r, subjects)
	switch {
	case polarity > 0.55:
		parts = append(parts, subject, "is", maybeIntensify(r, pick(r, strongPositive)))
		if r.Bernoulli(0.5) {
			parts = append(parts, pick(r, positiveTails))
		}
	case polarity > 0.15:
		if r.Bernoulli(0.25) {
			// Negated negative reads mildly positive: "not bad at all".
			parts = append(parts, subject, "is", "not", pick(r, mildNegative), "at all")
		} else {
			parts = append(parts, subject, "is", pick(r, mildPositive))
		}
	case polarity < -0.55:
		parts = append(parts, subject, "is", maybeIntensify(r, pick(r, strongNegative)))
		if r.Bernoulli(0.5) {
			parts = append(parts, pick(r, negativeTails))
		}
	case polarity < -0.15:
		if r.Bernoulli(0.25) {
			parts = append(parts, subject, "is", "not", pick(r, mildPositive))
		} else {
			parts = append(parts, subject, "is", pick(r, mildNegative))
		}
	default:
		parts = append(parts, pick(r, neutralWords), "on", subject)
		if r.Bernoulli(0.5) {
			parts = append(parts, pick(r, neutralTails))
		}
	}
	if isPost && r.Bernoulli(0.3) {
		parts = append(parts, pick(r, neutralTails))
	}
	return strings.Join(parts, " ")
}

func maybeIntensify(r *rng.RNG, word string) string {
	if r.Bernoulli(0.4) {
		return pick(r, []string{"really", "absolutely", "truly", "extremely"}) + " " + word
	}
	return word
}
