package cascade

import (
	"strings"
	"testing"

	"chassis/internal/rng"
)

func newTestRNG() *rng.RNG { return rng.New(1234) }

func TestRenderTextNonEmpty(t *testing.T) {
	r := newTestRNG()
	for _, p := range []float64{0.9, 0.3, 0, -0.3, -0.9} {
		for i := 0; i < 20; i++ {
			text := renderText(r, p, i%2 == 0)
			if strings.TrimSpace(text) == "" {
				t.Fatalf("empty text for polarity %g", p)
			}
		}
	}
}

func TestRenderTextVocabularyTracksSign(t *testing.T) {
	r := newTestRNG()
	posHits, negHits := 0, 0
	for i := 0; i < 200; i++ {
		pos := renderText(r, 0.9, false)
		for _, w := range strongPositive {
			if strings.Contains(pos, w) {
				posHits++
				break
			}
		}
		neg := renderText(r, -0.9, false)
		for _, w := range strongNegative {
			if strings.Contains(neg, w) {
				negHits++
				break
			}
		}
	}
	if posHits < 150 || negHits < 150 {
		t.Errorf("strong polarity should use strong vocabulary: pos %d/200, neg %d/200", posHits, negHits)
	}
}

func TestRenderTextNeutralAvoidsSentiment(t *testing.T) {
	r := newTestRNG()
	for i := 0; i < 100; i++ {
		text := renderText(r, 0, false)
		for _, w := range append(append([]string{}, strongPositive...), strongNegative...) {
			if strings.Contains(text, w) {
				t.Fatalf("neutral text %q contains sentiment word %q", text, w)
			}
		}
	}
}
