package cascade

import (
	"fmt"
	"math"
	"sort"

	"chassis/internal/rng"
	"chassis/internal/stance"
	"chassis/internal/timeline"
)

// Presets mirroring the paper's corpora, scaled to run on one machine.
// scale = 1 gives the default experiment size (M ≈ 60, thousands of
// activities); the scalability bench passes larger scales.

// FacebookLike returns the SF-analogue configuration: a small-world-ish
// reciprocal graph (friendship networks are largely mutual), moderate
// activity.
func FacebookLike(scale float64, seed int64) Config {
	if scale <= 0 {
		scale = 1
	}
	m := int(60 * scale)
	return Config{
		Name: "SF", M: m, Horizon: 1500, Seed: seed,
		Graph: BarabasiAlbert, GraphDegree: 3, Reciprocity: 0.7,
		Topics:     3,
		BaseRateLo: 0.004, BaseRateHi: 0.012,
		KernelRate: 0.8, KernelKind: "rayleigh", TargetBranching: 0.55,
		ConformityWeight: 0.75, PolarityNoise: 0.18, LikeFraction: 0.25,
	}
}

// TwitterLike returns the ST-analogue configuration: a heavier-tailed
// one-directional follower graph, burstier kernels, more retweet-style
// responses.
func TwitterLike(scale float64, seed int64) Config {
	if scale <= 0 {
		scale = 1
	}
	m := int(66 * scale)
	return Config{
		Name: "ST", M: m, Horizon: 1500, Seed: seed,
		Graph: BarabasiAlbert, GraphDegree: 4, Reciprocity: 0.25,
		Topics:     4,
		BaseRateLo: 0.004, BaseRateHi: 0.014,
		KernelRate: 1.6, KernelKind: "rayleigh", TargetBranching: 0.6,
		ConformityWeight: 0.7, PolarityNoise: 0.22, LikeFraction: 0.2,
	}
}

// PaperScale returns the paper-scale SF-subset shape — 590k activities
// over 100k users — for GenerateStream. The configuration is the SF preset
// rebased to 100_000 users with exogenous rates tuned so the realized event
// count (immigrants × the horizon-truncated cluster multiplier, ≈ 1.96 at
// branching 0.55) slightly overshoots the 590_000 cap, making the corpus
// size exact and deterministic. A corpus this size only exists as a
// colstore stream: Generate would need an 80 GB dense influence matrix,
// which is the point of the streaming path.
func PaperScale(seed int64) Config {
	return Config{
		Name: "SF-100K", M: 100_000, Horizon: 1500, Seed: seed,
		Graph: BarabasiAlbert, GraphDegree: 3, Reciprocity: 0.7,
		Topics:     3,
		BaseRateLo: 0.0012, BaseRateHi: 0.0029,
		KernelRate: 0.8, KernelKind: "rayleigh", TargetBranching: 0.55,
		ConformityWeight: 0.75, PolarityNoise: 0.18, LikeFraction: 0.25,
		MaxEvents: 590_000,
	}
}

// PHEMEEvent parameterizes one rumour event of the PHEME-like benchmark.
// Difficulty increases with temporal overlap between threads (OverlapRate)
// and polarity noise — the knob ordering reproduces the monotone rows of
// Table 1.
type PHEMEEvent struct {
	Name          string
	Threads       int
	MeanThreadLen int
	Users         int
	OverlapRate   float64 // threads started per unit time (higher = more interleaving)
	PolarityNoise float64
	KernelRate    float64
	Seed          int64
}

// PHEMEEvents returns the five events of Table 1 in paper order, easiest
// first.
func PHEMEEvents(seed int64) []PHEMEEvent {
	return []PHEMEEvent{
		{Name: "Charlie Hebdo", Threads: 60, MeanThreadLen: 14, Users: 40, OverlapRate: 0.10, PolarityNoise: 0.10, KernelRate: 4.0, Seed: seed + 1},
		{Name: "Sydney siege", Threads: 60, MeanThreadLen: 13, Users: 40, OverlapRate: 0.15, PolarityNoise: 0.14, KernelRate: 3.4, Seed: seed + 2},
		{Name: "Ferguson", Threads: 60, MeanThreadLen: 12, Users: 40, OverlapRate: 0.22, PolarityNoise: 0.18, KernelRate: 2.8, Seed: seed + 3},
		{Name: "Ottawa shooting", Threads: 60, MeanThreadLen: 11, Users: 40, OverlapRate: 0.32, PolarityNoise: 0.24, KernelRate: 2.2, Seed: seed + 4},
		{Name: "Germanwings-crash", Threads: 60, MeanThreadLen: 10, Users: 40, OverlapRate: 0.45, PolarityNoise: 0.30, KernelRate: 1.7, Seed: seed + 5},
	}
}

// GeneratePHEME builds one event's conversation threads with known reply
// trees. Threads are grown explicitly rather than via the Hawkes simulator,
// mirroring how PHEME conversations are curated reply trees rather than an
// open stream; the Hawkes machinery is then asked to *re-infer* those
// trees. The reply structure carries the regularities real threads have —
// and that inference exploits:
//
//   - root attraction (most replies answer the original tweet),
//   - recency (side conversations answer fresh comments),
//   - influencer affinity (users keep replying to the same few accounts
//     across threads — the per-pair signal Hawkes excitation learns), and
//   - conformity-blended polarities (the stance signal CHASSIS adds).
//
// Difficulty rises with OverlapRate (thread interleaving puts foreign
// activities among the temporal candidates) and PolarityNoise, producing
// the monotone rows of Table 1.
func GeneratePHEME(ev PHEMEEvent) (*Dataset, error) {
	if ev.Threads <= 0 || ev.MeanThreadLen <= 1 || ev.Users <= 1 {
		return nil, fmt.Errorf("cascade: bad PHEME event %+v", ev)
	}
	r := rng.New(ev.Seed)
	rTraits := r.Split(1)
	opinions := make([][]float64, ev.Users)
	trait := make([]float64, ev.Users)
	for u := range opinions {
		opinions[u] = []float64{rTraits.Uniform(-1, 1)}
		trait[u] = rTraits.Float64()
	}
	// Influencer sets: each user habitually replies to a few accounts,
	// drawn with a popularity skew so a core of prominent voices exists.
	popWeights := make([]float64, ev.Users)
	for u := range popWeights {
		popWeights[u] = 1 / float64(u+2)
	}
	influencers := make([]map[int]bool, ev.Users)
	for u := range influencers {
		influencers[u] = make(map[int]bool, 5)
		for len(influencers[u]) < 5 {
			v := rTraits.Categorical(popWeights)
			if v != u {
				influencers[u][v] = true
			}
		}
	}

	seq := &timeline.Sequence{M: ev.Users}
	expressed := make([]float64, 0, ev.Threads*ev.MeanThreadLen)
	rT := r.Split(2)
	start := 0.0
	for th := 0; th < ev.Threads; th++ {
		start += rT.Exp(ev.OverlapRate)
		length := 2 + rT.Poisson(float64(ev.MeanThreadLen-2))
		// Prominent voices start threads, and the participants are mostly
		// the root's habitual repliers — so the same ordered pairs recur
		// across threads, building the per-pair interaction history that
		// both Hawkes excitation and conformity extraction feed on.
		root := rT.Categorical(popWeights)
		var followers []int
		for u := range influencers {
			if u != root && influencers[u][root] {
				followers = append(followers, u)
			}
		}
		members := []int{root}
		perm := rT.Perm(len(followers))
		for _, idx := range perm {
			if len(members) >= length+2 {
				break
			}
			members = append(members, followers[idx])
		}
		for len(members) < min(ev.Users, length+2) {
			u := rT.Intn(ev.Users)
			dup := false
			for _, m := range members {
				if m == u {
					dup = true
					break
				}
			}
			if !dup {
				members = append(members, u)
			}
		}
		rootPol := clampPolarity(opinions[root][0] + rT.Normal(0, ev.PolarityNoise))
		rootID := len(seq.Activities)
		seq.Activities = append(seq.Activities, timeline.Activity{
			ID: timeline.ActivityID(rootID), User: timeline.UserID(root),
			Time: start, Kind: timeline.Post, Parent: timeline.NoParent,
			Text: renderText(rT, rootPol, true),
		})
		expressed = append(expressed, rootPol)
		threadIdx := []int{rootID}
		// Replies cluster around the root — a burst whose offsets are
		// independent exponentials, not a sequential chain — so the root
		// stays temporally close to most of its replies, as in real
		// threads.
		offsets := make([]float64, length-1)
		for k := range offsets {
			offsets[k] = rT.Exp(ev.KernelRate / 3)
		}
		sortFloats(offsets)
		for k := 1; k < length; k++ {
			t := start + offsets[k-1]
			u := members[1+rT.Intn(len(members)-1)]
			// Parent weights: the root decays slowly (people answer the
			// original tweet long after), comments decay fast (side
			// conversations are about what was just said), activities by
			// the replier's habitual influencers attract extra replies,
			// and agreement (parent polarity × replier opinion) pulls —
			// the conformity structure CHASSIS extracts.
			// Attachment is pair-affinity × recency — exactly the
			// αᵢⱼ·φ(Δt) form a Hawkes branching process realizes, so the
			// trees are invertible by Hawkes-based inference the way real
			// reply trees are. Affinity encodes the conformity structure:
			// habitual influencers and stance agreement pull replies.
			weights := make([]float64, len(threadIdx))
			for w, idx := range threadIdx {
				a := &seq.Activities[idx]
				age := t - a.Time
				aff := 0.3
				if influencers[u][int(a.User)] {
					aff += 8
				}
				if agree := expressed[idx] * opinions[u][0]; agree > 0 {
					aff += 3 * agree
				}
				weights[w] = aff*math.Exp(-2.5*age) + 0.001
			}
			parent := threadIdx[rT.Categorical(weights)]
			c := trait[u]
			pol := clampPolarity((1-c)*opinions[u][0] + c*expressed[parent] + rT.Normal(0, ev.PolarityNoise))
			id := len(seq.Activities)
			kind := timeline.Reply
			switch rT.Intn(4) {
			case 0:
				kind = timeline.Retweet
			case 1:
				kind = timeline.Comment
			}
			seq.Activities = append(seq.Activities, timeline.Activity{
				ID: timeline.ActivityID(id), User: timeline.UserID(u),
				Time: t, Kind: kind, Parent: timeline.ActivityID(parent),
				Text: renderText(rT, pol, false),
			})
			expressed = append(expressed, pol)
			threadIdx = append(threadIdx, id)
		}
	}
	seq.Normalize()
	var last float64
	if n := len(seq.Activities); n > 0 {
		last = seq.Activities[n-1].Time
	}
	seq.Horizon = last + 1
	if err := seq.Validate(); err != nil {
		return nil, fmt.Errorf("cascade: PHEME %s produced invalid sequence: %w", ev.Name, err)
	}
	stance.NewAnalyzer().AnnotateSequence(seq)
	return &Dataset{
		Name: ev.Name, Seq: seq,
		Opinions: opinions, Conformity: trait,
	}, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func sortFloats(xs []float64) { sort.Float64s(xs) }
