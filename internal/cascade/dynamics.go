package cascade

import (
	"math"

	"chassis/internal/kernel"
	"chassis/internal/rng"
	"chassis/internal/timeline"
)

// dynamicState tracks the evolving conformity of each ordered pair during
// generation, in exactly the form of the paper's influence degree Φ
// (Eq. 5.1): a β-decayed count of past parent-child interactions j→i,
// normalized by the receiver's cumulative offspring count ℕᵢ(t). The
// ground-truth excitation is affine in this quantity, so the corpus is
// generated *from the CHASSIS model class* — the standard protocol for a
// reproduction without access to the original data: conformity-aware
// inference is well-specified, and static-α baselines can only fit the
// time-average of the ramp.
type dynamicState struct {
	val  []float64 // β-decayed interaction count, dense M×M (i*M+j)
	last []float64 // time of last pair update
	tot  []float64 // cumulative offspring count ℕᵢ per receiver
	m    int
	// beta is the interaction decay rate (β of Eq. 5.1).
	beta float64
}

func newDynamicState(m int) *dynamicState {
	return &dynamicState{
		val: make([]float64, m*m), last: make([]float64, m*m),
		tot: make([]float64, m),
		m:   m, beta: 0.05,
	}
}

// at returns Φᵢⱼ(t): the decayed pair count over 1+ℕᵢ(t).
func (s *dynamicState) at(i, j int, t float64) float64 {
	idx := i*s.m + j
	pair := s.val[idx] * math.Exp(-s.beta*(t-s.last[idx]))
	return pair / (1 + s.tot[i])
}

func (s *dynamicState) bump(i, j int, t float64) {
	idx := i*s.m + j
	s.val[idx] = s.val[idx]*math.Exp(-s.beta*(t-s.last[idx])) + 1
	s.last[idx] = t
	s.tot[i]++
}

// dynamicAlpha is the ground-truth time-varying excitation, affine in the
// Φ-shaped ramp: base·((1−w) + w·min(k·Φ, hotCap)). ConformityWeight = 0
// reduces to the static matrix; the gain k puts a warm pair well above its
// cold level, and hotCap bounds the multiplier so the process stays
// subcritical (the static rescaling budgets for base·(1 + (hotCap−1)·w)).
const (
	dynamicGain   = 12.0
	dynamicHotCap = 2.5
)

func dynamicAlpha(base float64, phi, weight float64) float64 {
	if base == 0 {
		return 0
	}
	hot := dynamicGain * phi
	if hot > dynamicHotCap {
		hot = dynamicHotCap
	}
	return base * ((1 - weight) + weight*hot)
}

// simulateDynamic runs an Ogata thinning loop with the dynamic excitation:
// a generalized clone of the hawkes simulator that updates pair conformity
// as ground-truth parents are assigned. Linear link; arbitrary kernel.
func simulateDynamic(r *rng.RNG, cfg Config, mu []float64, base [][]float64, ker kernel.Kernel) (*timeline.Sequence, error) {
	m := cfg.M
	seq := &timeline.Sequence{M: m, Horizon: cfg.Horizon}
	state := newDynamicState(m)
	support := ker.Support()

	type histEvent struct {
		idx  int
		user int
		time float64
		// alpha per receiver, frozen at emission time (marked-process
		// semantics, matching the inference engine).
		alpha []float64
	}
	var hist []histEvent

	intensity := func(i int, t float64) float64 {
		x := mu[i]
		for h := len(hist) - 1; h >= 0; h-- {
			e := &hist[h]
			dt := t - e.time
			if dt > support {
				break
			}
			if dt <= 0 {
				continue
			}
			if a := e.alpha[i]; a > 0 {
				x += a * ker.Eval(dt)
			}
		}
		if x < 0 {
			return 0
		}
		return x
	}

	lambda := make([]float64, m)
	t := 0.0
	// Rising kernels (Rayleigh) violate the "current intensity is an upper
	// bound" assumption; the margin plus the min-acceptance clamp keeps the
	// sampler correct enough for data generation (documented in hawkes).
	const margin = 1.6
	for len(seq.Activities) < cfg.MaxEvents {
		// Trim stale history so the intensity scan stays windowed.
		for len(hist) > 0 && t-hist[0].time > support {
			hist = hist[1:]
		}
		var bound float64
		for i := 0; i < m; i++ {
			bound += intensity(i, t+1e-12)
		}
		bound *= margin
		if bound <= 0 {
			break
		}
		s := t + r.Exp(bound)
		if s > cfg.Horizon {
			break
		}
		var total float64
		for i := 0; i < m; i++ {
			lambda[i] = intensity(i, s)
			total += lambda[i]
		}
		t = s
		accept := total / bound
		if accept > 1 {
			accept = 1
		}
		if r.Float64() > accept {
			continue
		}
		dim := r.Categorical(lambda)
		if dim < 0 {
			continue
		}
		// Parent attribution from the linear branching decomposition.
		weights := make([]float64, 1, len(hist)+1)
		weights[0] = mu[dim]
		cands := make([]int, 0, len(hist))
		for h := range hist {
			e := &hist[h]
			dt := s - e.time
			if dt <= 0 || dt > support {
				continue
			}
			weights = append(weights, e.alpha[dim]*ker.Eval(dt))
			cands = append(cands, h)
		}
		parent := timeline.NoParent
		if pick := r.Categorical(weights); pick > 0 {
			h := &hist[cands[pick-1]]
			parent = timeline.ActivityID(h.idx)
			// The new interaction deepens the pair's conformity.
			state.bump(dim, h.user, s)
		}
		id := len(seq.Activities)
		kind := timeline.Post
		if parent != timeline.NoParent {
			kind = timeline.Comment
		}
		seq.Activities = append(seq.Activities, timeline.Activity{
			ID: timeline.ActivityID(id), User: timeline.UserID(dim),
			Time: s, Kind: kind, Parent: parent,
		})
		// Freeze this event's outgoing excitation at its own time.
		al := make([]float64, m)
		for i := 0; i < m; i++ {
			if b := base[i][dim]; b > 0 {
				al[i] = dynamicAlpha(b, state.at(i, dim, s), cfg.ConformityWeight)
			}
		}
		hist = append(hist, histEvent{idx: id, user: dim, time: s, alpha: al})
	}
	if len(seq.Activities) >= cfg.MaxEvents {
		return seq, ErrMaxEvents
	}
	return seq, nil
}

// ErrMaxEvents mirrors the hawkes simulator's explosion guard.
var ErrMaxEvents = errMaxEvents{}

type errMaxEvents struct{}

func (errMaxEvents) Error() string {
	return "cascade: dynamic simulation reached MaxEvents before the horizon"
}
