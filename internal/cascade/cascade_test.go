package cascade

import (
	"math"
	"testing"

	"chassis/internal/branching"
	"chassis/internal/stance"
	"chassis/internal/timeline"
)

func smallConfig(seed int64) Config {
	return Config{
		Name: "test", M: 20, Horizon: 300, Seed: seed,
		Graph: BarabasiAlbert, GraphDegree: 2, Reciprocity: 0.4,
		Topics: 2, BaseRateLo: 0.005, BaseRateHi: 0.02,
		KernelRate: 1, TargetBranching: 0.5,
		ConformityWeight: 0.7, PolarityNoise: 0.15, LikeFraction: 0.2,
	}
}

func TestGenerateBasics(t *testing.T) {
	d, err := Generate(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Seq.Validate(); err != nil {
		t.Fatalf("generated sequence invalid: %v", err)
	}
	if d.Seq.Len() < 30 {
		t.Fatalf("too few activities: %d", d.Seq.Len())
	}
	if len(d.Influence) != 20 || len(d.Opinions) != 20 || len(d.Conformity) != 20 {
		t.Error("ground truth arrays sized wrong")
	}
	for u, tr := range d.Conformity {
		if tr < 0 || tr > 1 {
			t.Errorf("conformity trait[%d] = %g outside [0,1]", u, tr)
		}
		for _, o := range d.Opinions[u] {
			if o < -1 || o > 1 {
				t.Errorf("opinion of %d = %g outside [-1,1]", u, o)
			}
		}
	}
	// Influence matrix respects the graph: nonzero only on follow edges.
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			if d.Influence[i][j] > 0 && !d.Graph.HasEdge(j, i) {
				t.Errorf("influence %d<-%d without a follow edge", i, j)
			}
			if d.Influence[i][j] < 0 {
				t.Errorf("negative ground-truth influence at (%d,%d)", i, j)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Seq.Len() != b.Seq.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Seq.Len(), b.Seq.Len())
	}
	for i := range a.Seq.Activities {
		x, y := a.Seq.Activities[i], b.Seq.Activities[i]
		if x.Time != y.Time || x.User != y.User || x.Text != y.Text || x.Parent != y.Parent {
			t.Fatalf("activity %d differs between same-seed runs", i)
		}
	}
	c, err := Generate(smallConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if c.Seq.Len() == a.Seq.Len() && c.Seq.Activities[0].Time == a.Seq.Activities[0].Time {
		t.Error("different seeds should give different corpora")
	}
}

func TestGenerateValidatesConfig(t *testing.T) {
	bad := smallConfig(1)
	bad.M = 1
	if _, err := Generate(bad); err == nil {
		t.Error("M=1 must fail")
	}
	bad = smallConfig(1)
	bad.Horizon = 0
	if _, err := Generate(bad); err == nil {
		t.Error("zero horizon must fail")
	}
	bad = smallConfig(1)
	bad.TargetBranching = 0.99
	if _, err := Generate(bad); err == nil {
		t.Error("near-critical branching must fail")
	}
	bad = smallConfig(1)
	bad.ConformityWeight = 2
	if _, err := Generate(bad); err == nil {
		t.Error("conformity weight > 1 must fail")
	}
}

func TestGeneratedKindsAndText(t *testing.T) {
	d, err := Generate(smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	var posts, likes, texty int
	for _, a := range d.Seq.Activities {
		if a.IsImmigrant() {
			if a.Kind != timeline.Post {
				t.Fatalf("immigrant with kind %v", a.Kind)
			}
			posts++
		} else if a.Kind == timeline.Post {
			t.Fatal("offspring typed as Post")
		}
		if a.Kind.Explicit() {
			likes++
			if a.Text != "" {
				t.Fatal("explicit reactions carry no text")
			}
			if a.Polarity != 1 && a.Polarity != -1 {
				t.Fatalf("explicit reaction polarity = %g", a.Polarity)
			}
		}
		if a.Text != "" {
			texty++
		}
	}
	if posts == 0 {
		t.Error("no immigrant posts")
	}
	if likes == 0 {
		t.Error("no explicit reactions despite LikeFraction > 0")
	}
	if texty < d.Seq.Len()/2 {
		t.Error("most activities should carry text")
	}
}

// The generated corpus must contain recoverable conformity signal: a child
// whose author has a high conformity trait should have polarity closer to
// its parent's than a low-trait child, on average.
func TestConformitySignalPresent(t *testing.T) {
	cfg := smallConfig(3)
	cfg.M = 40
	cfg.Horizon = 800
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var hiDiff, loDiff []float64
	for _, a := range d.Seq.Activities {
		if a.IsImmigrant() || a.Kind.Explicit() {
			continue
		}
		parent := d.Seq.Activities[a.Parent]
		diff := math.Abs(a.Polarity - parent.Polarity)
		if d.Conformity[a.User] > 0.65 {
			hiDiff = append(hiDiff, diff)
		} else if d.Conformity[a.User] < 0.35 {
			loDiff = append(loDiff, diff)
		}
	}
	if len(hiDiff) < 10 || len(loDiff) < 10 {
		t.Skip("not enough samples in trait buckets")
	}
	mean := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if mean(hiDiff) >= mean(loDiff) {
		t.Errorf("high-conformity users should echo parents: hi=%.3f lo=%.3f",
			mean(hiDiff), mean(loDiff))
	}
}

func TestAnalyzerRecoversExpressedPolarity(t *testing.T) {
	// Text rendered from a strongly positive polarity should analyze
	// positive far more often than not (and symmetrically for negative).
	d, err := Generate(smallConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	_ = d
	a := stance.NewAnalyzer()
	var agree, total int
	r := newTestRNG()
	for trial := 0; trial < 300; trial++ {
		want := 0.8
		if trial%2 == 1 {
			want = -0.8
		}
		text := renderText(r, want, false)
		got := a.Polarity(text)
		if got*want > 0 {
			agree++
		}
		total++
	}
	if frac := float64(agree) / float64(total); frac < 0.85 {
		t.Errorf("analyzer agrees with rendered polarity only %.0f%%", frac*100)
	}
}

func TestPHEMEGeneration(t *testing.T) {
	events := PHEMEEvents(99)
	if len(events) != 5 {
		t.Fatalf("want 5 PHEME events, got %d", len(events))
	}
	names := map[string]bool{}
	for _, ev := range events {
		d, err := GeneratePHEME(ev)
		if err != nil {
			t.Fatalf("%s: %v", ev.Name, err)
		}
		names[d.Name] = true
		if err := d.Seq.Validate(); err != nil {
			t.Fatalf("%s: invalid sequence: %v", ev.Name, err)
		}
		f, err := branching.FromSequence(d.Seq)
		if err != nil {
			t.Fatalf("%s: %v", ev.Name, err)
		}
		if f.NumTrees() != ev.Threads {
			t.Errorf("%s: %d trees, want %d", ev.Name, f.NumTrees(), ev.Threads)
		}
		st := f.Summarize()
		if st.MeanTreeSize < 3 {
			t.Errorf("%s: threads too short (mean %.1f)", ev.Name, st.MeanTreeSize)
		}
		// Every activity has a polarity assigned (explicit or analyzed);
		// roots are posts, replies are not.
		for _, a := range d.Seq.Activities {
			if a.IsImmigrant() && a.Kind != timeline.Post {
				t.Fatalf("%s: root with kind %v", ev.Name, a.Kind)
			}
		}
	}
	if len(names) != 5 {
		t.Error("event names must be distinct")
	}
	if _, err := GeneratePHEME(PHEMEEvent{}); err == nil {
		t.Error("empty event must fail")
	}
}

func TestPHEMEDeterministic(t *testing.T) {
	ev := PHEMEEvents(5)[0]
	a, _ := GeneratePHEME(ev)
	b, _ := GeneratePHEME(ev)
	if a.Seq.Len() != b.Seq.Len() {
		t.Fatal("same-seed PHEME runs differ")
	}
	for i := range a.Seq.Activities {
		if a.Seq.Activities[i].Parent != b.Seq.Activities[i].Parent {
			t.Fatal("same-seed PHEME parents differ")
		}
	}
}

func TestOpinionSimilarity(t *testing.T) {
	if got := opinionSimilarity([]float64{1}, []float64{1}); got != 1 {
		t.Errorf("identical opinions similarity = %g", got)
	}
	if got := opinionSimilarity([]float64{1}, []float64{-1}); got != 0 {
		t.Errorf("opposite opinions similarity = %g", got)
	}
	if got := opinionSimilarity([]float64{1, 0}, []float64{0, 0}); got != 0.75 {
		t.Errorf("mixed similarity = %g, want 0.75", got)
	}
}

func TestRescaleToBranching(t *testing.T) {
	a := [][]float64{{0, 2}, {2, 0}}
	rescaleToBranching(a, 0.5, 0.92)
	// Column sums were 2; now must be 0.5.
	if a[1][0] != 0.5 || a[0][1] != 0.5 {
		t.Errorf("rescaled matrix = %v", a)
	}
	z := [][]float64{{0}}
	rescaleToBranching(z, 0.5, 0.92) // must not divide by zero
	if z[0][0] != 0 {
		t.Error("zero matrix must stay zero")
	}
}
