package cascade

import (
	"math"
	"testing"

	"chassis/internal/branching"
)

func TestDynamicStatePhiShape(t *testing.T) {
	s := newDynamicState(3)
	// No interactions: Φ = 0 everywhere.
	if s.at(0, 1, 5) != 0 {
		t.Error("cold state must be 0")
	}
	s.bump(0, 1, 10)
	// Right after the bump: pair count 1, ℕ₀ = 1 → Φ = 1/(1+1).
	got := s.at(0, 1, 10)
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Φ after first bump = %g, want 0.5", got)
	}
	// Decays with elapsed time (β = 0.05).
	later := s.at(0, 1, 30)
	want := math.Exp(-0.05*20) / 2
	if math.Abs(later-want) > 1e-12 {
		t.Errorf("decayed Φ = %g, want %g", later, want)
	}
	// Another pair's interaction grows the receiver's normalizer and
	// dilutes this pair.
	s.bump(0, 2, 30)
	diluted := s.at(0, 1, 30)
	if diluted >= later {
		t.Errorf("normalizer growth must dilute: %g vs %g", diluted, later)
	}
	// The other receiver is unaffected.
	if s.at(1, 0, 30) != 0 {
		t.Error("cross-receiver state must stay 0")
	}
}

func TestDynamicAlpha(t *testing.T) {
	// Zero base stays zero.
	if dynamicAlpha(0, 1, 0.7) != 0 {
		t.Error("zero base must give zero")
	}
	// Zero conformity weight reduces to the static base.
	if got := dynamicAlpha(0.4, 0.9, 0); got != 0.4 {
		t.Errorf("w=0 gives %g, want base", got)
	}
	// Cold pair under full weight: (1-w) + w·0 → base·(1−w).
	if got := dynamicAlpha(0.4, 0, 1); math.Abs(got) > 1e-12 {
		t.Errorf("cold full-weight pair = %g, want 0", got)
	}
	// Hot pair saturates at the cap.
	hot := dynamicAlpha(0.4, 10, 1)
	if math.Abs(hot-0.4*dynamicHotCap) > 1e-12 {
		t.Errorf("hot pair = %g, want base·cap", hot)
	}
	// Monotone in phi.
	prev := -1.0
	for phi := 0.0; phi < 0.5; phi += 0.01 {
		v := dynamicAlpha(0.4, phi, 0.7)
		if v < prev {
			t.Fatalf("dynamicAlpha not monotone at phi=%g", phi)
		}
		prev = v
	}
}

func TestSimulateDynamicProducesConformityRamps(t *testing.T) {
	cfg := smallConfig(5)
	cfg.M = 30
	cfg.Horizon = 2000
	cfg.BaseRateLo, cfg.BaseRateHi = 0.01, 0.03
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := branching.FromSequence(d.Seq)
	if err != nil {
		t.Fatal(err)
	}
	// The dynamic process must produce offspring and repeated pairs:
	// pairs with ≥3 interactions should exist (the ramp rewards repeats).
	pairCounts := map[[2]int]int{}
	for k := range d.Seq.Activities {
		p := f.Parent(k)
		if p < 0 {
			continue
		}
		pairCounts[[2]int{int(d.Seq.Activities[k].User), int(d.Seq.Activities[p].User)}]++
	}
	repeats := 0
	for _, c := range pairCounts {
		if c >= 2 {
			repeats++
		}
	}
	if repeats < 3 {
		t.Errorf("dynamic ramp should concentrate interactions: %d pairs with ≥2", repeats)
	}
	if f.NumTrees() == f.Len() {
		t.Error("dynamic simulation produced no offspring")
	}
}

func TestSimulateDynamicSubcritical(t *testing.T) {
	// Even at full conformity weight the capped multiplier keeps the
	// process finite well below MaxEvents.
	cfg := smallConfig(6)
	cfg.ConformityWeight = 1
	cfg.Horizon = 600
	cfg.MaxEvents = 50_000
	d, err := Generate(cfg)
	if err != nil {
		t.Fatalf("full-weight generation exploded: %v", err)
	}
	if d.Seq.Len() >= cfg.MaxEvents {
		t.Errorf("hit the event cap: %d", d.Seq.Len())
	}
}
