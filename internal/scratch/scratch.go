// Package scratch provides sync.Pool-backed scratch slices for the hot
// paths: the sharded E-step's per-chunk candidate buffers, the intensity
// engine's per-call state and output vectors, the optimizer's gradient and
// trial vectors, and the Monte-Carlo predictors' per-draw counters. These
// loops run thousands of times per fit (and per served request), each
// needing short-lived float64/int slices of recurring sizes; recycling them
// keeps the allocator and GC out of the steady state.
//
// Pooling is invisible to results: a pooled slice is re-zeroed (for n > 0)
// before reuse, so a caller sees exactly what a fresh make() would give it.
// Callers that return early may simply not Put — the pool is an
// optimization, never an obligation — but must not Put a slice they have
// handed out to anyone else.
package scratch

import "sync"

// Pool is a typed free list of slices. The zero value is ready to use and
// safe for concurrent Get/Put.
type Pool[T any] struct {
	p sync.Pool
}

// Get returns a slice of length n, zeroed. When a pooled buffer with enough
// capacity is available it is recycled, otherwise a new one is allocated.
// Get(0) returns an empty slice with whatever capacity the pool had handy —
// the shape append-style callers want.
func (sp *Pool[T]) Get(n int) []T {
	if v := sp.p.Get(); v != nil {
		s := *(v.(*[]T))
		if cap(s) >= n {
			s = s[:n]
			var zero T
			for i := range s {
				s[i] = zero
			}
			return s
		}
	}
	return make([]T, n)
}

// Put recycles s for a future Get. The caller must not use s afterwards.
// Nil or zero-capacity slices are dropped.
func (sp *Pool[T]) Put(s []T) {
	if cap(s) == 0 {
		return
	}
	s = s[:0]
	sp.p.Put(&s)
}

var (
	floats Pool[float64]
	ints   Pool[int]
)

// Floats returns a zeroed []float64 of length n from the shared pool.
func Floats(n int) []float64 { return floats.Get(n) }

// PutFloats recycles a slice obtained from Floats.
func PutFloats(s []float64) { floats.Put(s) }

// Ints returns a zeroed []int of length n from the shared pool.
func Ints(n int) []int { return ints.Get(n) }

// PutInts recycles a slice obtained from Ints.
func PutInts(s []int) { ints.Put(s) }
