package scratch

import (
	"sync"
	"testing"
)

func TestGetReturnsZeroedLength(t *testing.T) {
	s := Floats(8)
	if len(s) != 8 {
		t.Fatalf("len = %d, want 8", len(s))
	}
	for i := range s {
		s[i] = float64(i + 1)
	}
	PutFloats(s)
	// Whatever comes back — recycled or fresh — must read as zeros.
	r := Floats(8)
	for i, v := range r {
		if v != 0 {
			t.Fatalf("recycled slice not zeroed at %d: %g", i, v)
		}
	}
	PutFloats(r)
}

func TestGetZeroForAppendUse(t *testing.T) {
	s := Floats(0)
	if len(s) != 0 {
		t.Fatalf("len = %d, want 0", len(s))
	}
	s = append(s, 1, 2, 3)
	PutFloats(s)
}

func TestIntsIndependentOfFloats(t *testing.T) {
	is := Ints(4)
	if len(is) != 4 {
		t.Fatalf("len = %d, want 4", len(is))
	}
	for i, v := range is {
		if v != 0 {
			t.Fatalf("Ints not zeroed at %d: %d", i, v)
		}
	}
	PutInts(is)
}

func TestTypedPoolGrowsCapacity(t *testing.T) {
	var p Pool[int32]
	small := p.Get(2)
	p.Put(small)
	big := p.Get(1024)
	if len(big) != 1024 {
		t.Fatalf("len = %d, want 1024", len(big))
	}
	p.Put(big)
	again := p.Get(512)
	if len(again) != 512 {
		t.Fatalf("len = %d, want 512", len(again))
	}
	p.Put(again)
}

// TestConcurrentGetPut exercises the pool from many goroutines; run under
// -race this proves Get/Put need no external locking.
func TestConcurrentGetPut(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := Floats(16 + g)
				for k := range s {
					if s[k] != 0 {
						t.Errorf("dirty slice from pool")
						return
					}
					s[k] = float64(g)
				}
				PutFloats(s)
			}
		}(g)
	}
	wg.Wait()
}
