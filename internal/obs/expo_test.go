package obs

import (
	"strings"
	"testing"
	"time"
)

func TestWriteTextExposition(t *testing.T) {
	m := NewMetrics()
	m.Counter("serve.next.requests").Add(7)
	m.Gauge("serve.model_version").Set(3)
	m.Timer("serve.next").Add(1500 * time.Millisecond)

	var b strings.Builder
	if err := m.Snapshot().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE chassis_serve_next_requests counter\nchassis_serve_next_requests 7\n",
		"# TYPE chassis_serve_model_version gauge\nchassis_serve_model_version 3\n",
		"chassis_serve_next_seconds_total 1.5\n",
		"chassis_serve_next_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Scrapes of an idle registry are byte-identical (sorted output).
	var b2 strings.Builder
	if err := m.Snapshot().WriteText(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Error("consecutive idle scrapes differ")
	}
}

func TestWriteTextEmpty(t *testing.T) {
	var b strings.Builder
	if err := (Snapshot{}).WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Errorf("empty snapshot produced output: %q", b.String())
	}
}

func TestMetricNameSanitized(t *testing.T) {
	got := metricName("e-step.9/time ms")
	want := "chassis_e_step_9_time_ms"
	if got != want {
		t.Errorf("metricName = %q, want %q", got, want)
	}
}
