package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeTimerBasics(t *testing.T) {
	m := NewMetrics()
	c := m.Counter("x")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if m.Counter("x") != c {
		t.Error("same name must return the same counter")
	}
	g := m.Gauge("g")
	g.Set(2.5)
	g.Set(-1.25)
	if got := g.Value(); got != -1.25 {
		t.Errorf("gauge = %v, want last write -1.25", got)
	}
	tm := m.Timer("t")
	tm.Add(3 * time.Millisecond)
	tm.Time(func() {})
	if tm.Count() != 2 {
		t.Errorf("timer count = %d, want 2", tm.Count())
	}
	if tm.Total() < 3*time.Millisecond {
		t.Errorf("timer total = %v, want >= 3ms", tm.Total())
	}
}

func TestNilRegistryAndInstrumentsAreNoops(t *testing.T) {
	var m *Metrics
	// Every lookup on the disabled registry returns a nil instrument whose
	// methods must be safe no-ops.
	c := m.Counter("x")
	c.Inc()
	c.Add(10)
	if c.Value() != 0 {
		t.Error("nil counter must read 0")
	}
	g := m.Gauge("g")
	g.Set(3)
	if g.Value() != 0 {
		t.Error("nil gauge must read 0")
	}
	tm := m.Timer("t")
	tm.Add(time.Second)
	ran := false
	tm.Time(func() { ran = true })
	if !ran {
		t.Error("nil timer must still run the timed function")
	}
	if tm.Total() != 0 || tm.Count() != 0 {
		t.Error("nil timer must read 0")
	}
	snap := m.Snapshot()
	if snap.Counters != nil || snap.Gauges != nil || snap.Timers != nil {
		t.Error("nil registry must snapshot empty")
	}
	if m.Names("counter") != nil {
		t.Error("nil registry must have no names")
	}
}

func TestNoopCounterPathAllocatesNothing(t *testing.T) {
	var m *Metrics
	c := m.Counter("hot")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		m.Counter("hot").Inc()
	})
	if allocs != 0 {
		t.Errorf("disabled metrics path allocates %v per op, want 0", allocs)
	}
}

func TestMetricsConcurrency(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				m.Counter("shared").Inc()
				m.Gauge("g").Set(float64(i))
				m.Timer("t").Add(time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if got := m.Counter("shared").Value(); got != 8*500 {
		t.Errorf("concurrent counter = %d, want %d", got, 8*500)
	}
	if got := m.Timer("t").Count(); got != 8*500 {
		t.Errorf("concurrent timer count = %d, want %d", got, 8*500)
	}
}

func TestSnapshotCopiesState(t *testing.T) {
	m := NewMetrics()
	m.Counter("c").Add(7)
	m.Gauge("g").Set(1.5)
	m.Timer("t").Add(2 * time.Second)
	s := m.Snapshot()
	if s.Counters["c"] != 7 || s.Gauges["g"] != 1.5 || s.Timers["t"].Count != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	m.Counter("c").Add(1)
	if s.Counters["c"] != 7 {
		t.Error("snapshot must be a copy, not a view")
	}
	names := m.Names("counter")
	if len(names) != 1 || names[0] != "c" {
		t.Errorf("Names = %v", names)
	}
}

func TestObserversComposition(t *testing.T) {
	if Observers() != nil || Observers(nil, nil) != nil {
		t.Fatal("empty/nil-only composition must be nil")
	}
	a, b := &CollectObserver{}, &CollectObserver{}
	if got := Observers(nil, a); got != a {
		t.Fatal("single observer must pass through unwrapped")
	}
	multi := Observers(a, nil, b)
	multi.OnIterStart(1)
	multi.OnMStep(MStepStats{Iter: 1})
	multi.OnEStep(EStepStats{Iter: 1})
	multi.OnIterEnd(IterStats{Iter: 1})
	for name, c := range map[string]*CollectObserver{"a": a, "b": b} {
		if len(c.Starts) != 1 || len(c.MForms) != 1 || len(c.EForms) != 1 || len(c.Iters) != 1 {
			t.Errorf("observer %s missed callbacks: %+v", name, c)
		}
	}
}

func TestProgressObserverOutput(t *testing.T) {
	var buf bytes.Buffer
	o := ProgressObserver(&buf, "tool")
	o.OnIterStart(1)
	o.OnEStep(EStepStats{Iter: 1, Events: 10, Entropy: 0.5, EntropyValid: true, MAP: true})
	o.OnIterEnd(IterStats{Iter: 1, TrainLL: -12.5, TrainLLValid: true, GradNorm: 0.1, GradNormValid: true})
	o.OnIterEnd(IterStats{Iter: 2}) // nothing measured
	NotifyRecovery(o, RecoveryStats{Iter: 3, Attempt: 1, Phase: "mstep",
		Quantity: "mu", Reason: "non-finite mu (NaN)", StepScale: 0.5})
	out := buf.String()
	for _, want := range []string{"tool estep iter=1", "MAP", "LL=-12.50", "LL=n/a",
		"guard iter 3", "rolled back"} {
		if !strings.Contains(out, want) {
			t.Errorf("progress output missing %q:\n%s", want, out)
		}
	}
}

func TestIterJSONWriterLinesAndNaN(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.jsonl")
	w, err := NewIterJSONWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewMetrics()
	reg.Counter("hawkes.euler_steps").Add(42)
	w.Attach(reg)
	w.OnIterEnd(IterStats{Iter: 1, Seconds: 0.5, TrainLL: -10, TrainLLValid: true,
		GradNorm: 2, GradNormValid: true})
	// A valid flag with a NaN value (should never happen, but must not break
	// the JSON stream) also lands as null.
	w.OnIterEnd(IterStats{Iter: 2, TrainLL: math.NaN(), TrainLLValid: true,
		Entropy: 0.3, EntropyValid: true})
	if w.Lines() != 2 {
		t.Fatalf("Lines = %d, want 2", w.Lines())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(blob)), "\n")
	if len(lines) != 2 {
		t.Fatalf("file has %d lines, want 2", len(lines))
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 1 not JSON: %v", err)
	}
	if first["iter"] != float64(1) || first["train_ll"] != float64(-10) {
		t.Errorf("line 1 = %v", first)
	}
	// Unmeasured quantities must serialize as JSON null, not zero.
	if v, ok := first["estep_entropy"]; !ok || v != nil {
		t.Errorf("unmeasured entropy must encode as null, got %v", v)
	}
	metrics, ok := first["metrics"].(map[string]any)
	if !ok {
		t.Fatalf("line 1 missing attached metrics snapshot: %v", first)
	}
	counters := metrics["counters"].(map[string]any)
	if counters["hawkes.euler_steps"] != float64(42) {
		t.Errorf("metrics snapshot = %v", metrics)
	}
	var second map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatalf("line 2 not JSON: %v", err)
	}
	if v := second["train_ll"]; v != nil {
		t.Errorf("train_ll NaN must encode as null, got %v", v)
	}
	if second["estep_entropy"] != float64(0.3) {
		t.Errorf("line 2 entropy = %v", second["estep_entropy"])
	}
}

func TestStartPprofServesIndex(t *testing.T) {
	addr, err := StartPprof("")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(addr, ":") {
		t.Fatalf("addr = %q, want host:port", addr)
	}
}
