// Package obs is the observability layer of the fit/predict lifecycle: a
// lightweight metrics registry (counters, gauges, timers) and the observer
// callback interfaces the EM loop, the baselines, and the Monte-Carlo
// predictors report into.
//
// Two design constraints shape the package:
//
//   - Zero cost when disabled. Every instrumented call site holds a
//     possibly-nil *Metrics or observer; all registry methods are nil-safe
//     no-ops, so the uninstrumented hot loops pay one pointer comparison
//     and allocate nothing. The benchmark-guard CI job pins this.
//   - No influence on results. Observers and metrics only *read* fitted
//     state: they never touch RNG streams, chunk boundaries, or parameter
//     updates, so an observed fit is bit-identical to an unobserved one
//     (enforced by internal/core's observer-determinism test).
//
// The package deliberately depends only on the standard library so every
// layer of the system — hawkes, core, baselines, predict, experiments, the
// CLIs — can import it without cycles.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing count. The nil Counter is a valid
// no-op receiver, which is what a disabled registry hands out.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d. No-op on a nil receiver.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins float64 measurement.
type Gauge struct {
	bits atomic.Uint64
}

// Set records v. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last recorded value (0 for a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Timer accumulates wall-clock durations and an observation count.
type Timer struct {
	nanos atomic.Int64
	count atomic.Int64
}

// Add records one observation of duration d. No-op on a nil receiver.
func (t *Timer) Add(d time.Duration) {
	if t == nil {
		return
	}
	t.nanos.Add(int64(d))
	t.count.Add(1)
}

// Time runs fn and records its wall time. On a nil receiver fn still runs,
// untimed.
func (t *Timer) Time(fn func()) {
	if t == nil {
		fn()
		return
	}
	start := time.Now()
	fn()
	t.Add(time.Since(start))
}

// Total returns the accumulated duration (0 for a nil receiver).
func (t *Timer) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.nanos.Load())
}

// Count returns the number of observations (0 for a nil receiver).
func (t *Timer) Count() int64 {
	if t == nil {
		return 0
	}
	return t.count.Load()
}

// Metrics is a named registry of counters, gauges, and timers. A nil
// *Metrics is the disabled registry: every lookup returns a nil instrument
// whose methods are no-ops, so instrumented code needs no enabled/disabled
// branches beyond carrying the pointer. All methods are safe for concurrent
// use — including a server scraping Snapshot/WriteText while worker
// goroutines look up and record into instruments: lookups take a read lock
// on the steady-state path (the instrument already exists) and upgrade to
// the write lock only to register a new name, and the instruments
// themselves are atomic.
type Metrics struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timers   map[string]*Timer
}

// NewMetrics returns an enabled, empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		timers:   map[string]*Timer{},
	}
}

// Counter returns (registering on first use) the named counter, or nil when
// the registry is disabled.
func (m *Metrics) Counter(name string) *Counter {
	if m == nil {
		return nil
	}
	m.mu.RLock()
	c, ok := m.counters[name]
	m.mu.RUnlock()
	if ok {
		return c
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok = m.counters[name]; !ok {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge returns (registering on first use) the named gauge, or nil when the
// registry is disabled.
func (m *Metrics) Gauge(name string) *Gauge {
	if m == nil {
		return nil
	}
	m.mu.RLock()
	g, ok := m.gauges[name]
	m.mu.RUnlock()
	if ok {
		return g
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if g, ok = m.gauges[name]; !ok {
		g = &Gauge{}
		m.gauges[name] = g
	}
	return g
}

// Timer returns (registering on first use) the named timer, or nil when the
// registry is disabled.
func (m *Metrics) Timer(name string) *Timer {
	if m == nil {
		return nil
	}
	m.mu.RLock()
	t, ok := m.timers[name]
	m.mu.RUnlock()
	if ok {
		return t
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if t, ok = m.timers[name]; !ok {
		t = &Timer{}
		m.timers[name] = t
	}
	return t
}

// TimerStats is one timer's exported state.
type TimerStats struct {
	Seconds float64 `json:"seconds"`
	Count   int64   `json:"count"`
}

// Snapshot is a point-in-time copy of a registry, JSON-encodable for the
// CLIs' -metrics-json output. Map keys come out sorted by the encoder, so
// snapshots diff cleanly.
type Snapshot struct {
	Counters map[string]int64      `json:"counters,omitempty"`
	Gauges   map[string]float64    `json:"gauges,omitempty"`
	Timers   map[string]TimerStats `json:"timers,omitempty"`
}

// Snapshot copies the registry's current state. A nil registry snapshots
// empty.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{}
	if m == nil {
		return s
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	if len(m.counters) > 0 {
		s.Counters = make(map[string]int64, len(m.counters))
		for name, c := range m.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(m.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(m.gauges))
		for name, g := range m.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(m.timers) > 0 {
		s.Timers = make(map[string]TimerStats, len(m.timers))
		for name, t := range m.timers {
			s.Timers[name] = TimerStats{Seconds: t.Total().Seconds(), Count: t.Count()}
		}
	}
	return s
}

// Names returns the sorted instrument names of one kind ("counter",
// "gauge", "timer") — a test and diagnostics convenience.
func (m *Metrics) Names(kind string) []string {
	if m == nil {
		return nil
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []string
	switch kind {
	case "counter":
		for name := range m.counters {
			out = append(out, name)
		}
	case "gauge":
		for name := range m.gauges {
			out = append(out, name)
		}
	case "timer":
		for name := range m.timers {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
