package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// StartPprof serves the net/http/pprof endpoints on addr (host:port; an
// empty host binds localhost, port 0 picks a free port) from a background
// goroutine and returns the bound address — the CLIs' -pprof
// implementation. The listener lives until process exit: profiling a
// long-running fit should not be tied to any one fit's lifecycle.
func StartPprof(addr string) (string, error) {
	if addr == "" {
		addr = "localhost:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: pprof listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go http.Serve(ln, mux) //nolint:errcheck // best-effort diagnostics server
	return ln.Addr().String(), nil
}
