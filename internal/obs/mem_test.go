package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

func TestCaptureMemory(t *testing.T) {
	CaptureMemory(nil) // nil registry is a no-op, not a panic

	reg := NewMetrics()
	CaptureMemory(reg)
	snap := reg.Snapshot()
	for _, name := range []string{"mem_heap_inuse_bytes", "mem_heap_sys_bytes", "mem_total_alloc_bytes"} {
		if v, ok := snap.Gauges[name]; !ok || v <= 0 {
			t.Errorf("gauge %s = %g, %v; want positive", name, v, ok)
		}
	}
	if runtime.GOOS == "linux" || runtime.GOOS == "darwin" {
		peak, ok := PeakRSSBytes()
		if !ok || peak <= 0 {
			t.Fatalf("PeakRSSBytes = %d, %v on %s", peak, ok, runtime.GOOS)
		}
		if snap.Gauges["mem_peak_rss_bytes"] != float64(peak) && snap.Gauges["mem_peak_rss_bytes"] <= 0 {
			t.Errorf("mem_peak_rss_bytes gauge missing: %v", snap.Gauges)
		}
		// The kernel high-water mark can only grow.
		again, _ := PeakRSSBytes()
		if again < peak {
			t.Errorf("peak RSS shrank: %d -> %d", peak, again)
		}
		// Peak RSS bounds heap-in-use: the process's resident high-water
		// mark cannot be below live heap pages.
		if float64(peak) < snap.Gauges["mem_heap_inuse_bytes"] {
			t.Errorf("peak RSS %d below heap in use %g", peak, snap.Gauges["mem_heap_inuse_bytes"])
		}
	}
}

// TestIterJSONWriterCapturesMemory: every -metrics-json line carries the
// memory gauges when a registry is attached.
func TestIterJSONWriterCapturesMemory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "iters.jsonl")
	w, err := NewIterJSONWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	w.Attach(NewMetrics())
	w.OnIterEnd(IterStats{Iter: 1, Seconds: 0.5})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var line struct {
		Metrics struct {
			Gauges map[string]float64 `json:"gauges"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(blob, &line); err != nil {
		t.Fatal(err)
	}
	if line.Metrics.Gauges["mem_heap_inuse_bytes"] <= 0 {
		t.Errorf("snapshot line missing memory gauges: %v", line.Metrics.Gauges)
	}
}
