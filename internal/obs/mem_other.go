//go:build !linux && !darwin

package obs

// PeakRSSBytes is unavailable on this platform; CaptureMemory omits the
// mem_peak_rss_bytes gauge.
func PeakRSSBytes() (int64, bool) { return 0, false }
