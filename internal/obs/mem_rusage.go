//go:build linux || darwin

package obs

import (
	"runtime"
	"syscall"
)

// PeakRSSBytes returns the process's high-water resident set size as the
// kernel accounts it (getrusage ru_maxrss), which tracks real page usage —
// mmapped colstore pages included — rather than Go heap bookkeeping.
func PeakRSSBytes() (int64, bool) {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0, false
	}
	peak := int64(ru.Maxrss)
	if runtime.GOOS == "linux" {
		peak *= 1024 // linux reports kilobytes; darwin reports bytes
	}
	return peak, true
}
