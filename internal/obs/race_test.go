package obs

import (
	"io"
	"sync"
	"testing"
	"time"
)

// TestMetricsConcurrentRecordSnapshot is the serving-path contract: worker
// goroutines register and record into instruments while a scraper
// concurrently snapshots and renders the registry. Run under -race in CI
// (the serve smoke job); the assertions double-check that late snapshots
// observe completed writes.
func TestMetricsConcurrentRecordSnapshot(t *testing.T) {
	m := NewMetrics()
	const writers = 8
	const perWriter = 500
	var wg sync.WaitGroup

	// Writers: half hammer one shared counter (contended fast path), half
	// register fresh names (registration write path).
	names := []string{"a.shared", "b.gauge", "c.timer", "d.other"}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				m.Counter("serve.requests").Inc()
				m.Gauge(names[w%len(names)]).Set(float64(i))
				m.Timer("serve.latency").Add(time.Microsecond)
			}
		}(w)
	}

	// Scrapers: Snapshot + text exposition + Names while writes are live.
	stop := make(chan struct{})
	var scrapeWG sync.WaitGroup
	for r := 0; r < 3; r++ {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := m.Snapshot()
				if err := s.WriteText(io.Discard); err != nil {
					t.Error(err)
					return
				}
				m.Names("counter")
			}
		}()
	}

	wg.Wait()
	close(stop)
	scrapeWG.Wait()

	if got := m.Counter("serve.requests").Value(); got != writers*perWriter {
		t.Errorf("serve.requests = %d, want %d", got, writers*perWriter)
	}
	if got := m.Timer("serve.latency").Count(); got != writers*perWriter {
		t.Errorf("serve.latency count = %d, want %d", got, writers*perWriter)
	}
	final := m.Snapshot()
	if final.Counters["serve.requests"] != writers*perWriter {
		t.Errorf("snapshot counter = %d, want %d", final.Counters["serve.requests"], writers*perWriter)
	}
}
