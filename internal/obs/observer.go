package obs

import (
	"fmt"
	"io"
	"math"
	"sync"
)

// EStepStats describes one E-step (latent branching-structure inference)
// pass of the EM loop.
type EStepStats struct {
	// Iter is the 1-based EM iteration the pass ran in.
	Iter int `json:"iter"`
	// Seconds is the pass's wall time.
	Seconds float64 `json:"seconds"`
	// Entropy is the mean parent-assignment entropy (nats per scored
	// event) of the triggering distributions — the paper's E-step
	// posterior sharpness. NaN when no event was scored.
	Entropy float64 `json:"entropy"`
	// Events is the number of events whose triggering distribution was
	// scored (asynchronous updates keep the rest on their previous
	// parent).
	Events int `json:"events"`
	// MAP reports whether the pass took argmax assignments (true) or
	// sampled (false).
	MAP bool `json:"map"`
}

// MStepStats describes one M-step (parametric + nonparametric) of the EM
// loop.
type MStepStats struct {
	// Iter is the 1-based EM iteration.
	Iter int `json:"iter"`
	// Seconds is the parametric (gradient-ascent) half's wall time.
	Seconds float64 `json:"seconds"`
	// KernelSeconds is the nonparametric (spectral kernel update) half's
	// wall time; 0 when the kernel update is disabled.
	KernelSeconds float64 `json:"kernel_seconds"`
	// GradNorm is the largest per-dimension L2 gradient norm at the
	// accepted optimum — a convergence signal (→0 as the M-step
	// saturates). NaN when gradient norms were not collected.
	GradNorm float64 `json:"grad_norm"`
	// Dims is the number of per-dimension optimizations run.
	Dims int `json:"dims"`
}

// IterStats summarizes one completed EM iteration.
type IterStats struct {
	// Iter is the 1-based EM iteration.
	Iter int `json:"iter"`
	// Seconds is the iteration's total wall time.
	Seconds float64 `json:"seconds"`
	// EStepSeconds/MStepSeconds/KernelSeconds/LLSeconds break the wall
	// time into the iteration's phases (0 for phases that did not run).
	EStepSeconds  float64 `json:"estep_seconds"`
	MStepSeconds  float64 `json:"mstep_seconds"`
	KernelSeconds float64 `json:"kernel_seconds"`
	LLSeconds     float64 `json:"ll_seconds"`
	// TrainLL is the training log-likelihood after the iteration. NaN when
	// not evaluated (it is evaluated whenever an observer is attached or
	// Config.TrackHistory is set).
	TrainLL float64 `json:"train_ll"`
	// Entropy is the E-step's mean parent-assignment entropy; NaN when no
	// E-step ran this iteration.
	Entropy float64 `json:"estep_entropy"`
	// GradNorm mirrors MStepStats.GradNorm.
	GradNorm float64 `json:"grad_norm"`
	// EulerSteps counts the compensator Euler grid evaluations performed
	// this iteration (0 under closed-form linear compensators).
	EulerSteps int64 `json:"euler_steps"`
}

// FitObserver receives lifecycle callbacks from a running EM fit. Within
// one fit, callbacks arrive from a single goroutine in the order
// OnIterStart → OnMStep → [OnEStep] → OnIterEnd, with strictly increasing
// 1-based iteration numbers (OnEStep only fires on iterations that refresh
// the branching structure). Observers must only read the stats they are
// handed: the fit guarantees that an attached observer never changes the
// fitted parameters.
type FitObserver interface {
	OnIterStart(iter int)
	OnEStep(s EStepStats)
	OnMStep(s MStepStats)
	OnIterEnd(s IterStats)
}

// PredictObserver receives progress from Monte-Carlo prediction loops.
// OnDraw may be called concurrently from worker goroutines; done is the
// cumulative number of completed draws, which arrives in no particular
// order. Implementations must be safe for concurrent use.
type PredictObserver interface {
	OnDraw(done, total int)
}

// PredictProgressFunc adapts a function to PredictObserver.
type PredictProgressFunc func(done, total int)

// OnDraw implements PredictObserver.
func (f PredictProgressFunc) OnDraw(done, total int) { f(done, total) }

// multiObserver fans callbacks out to several observers in order.
type multiObserver []FitObserver

func (m multiObserver) OnIterStart(iter int) {
	for _, o := range m {
		o.OnIterStart(iter)
	}
}
func (m multiObserver) OnEStep(s EStepStats) {
	for _, o := range m {
		o.OnEStep(s)
	}
}
func (m multiObserver) OnMStep(s MStepStats) {
	for _, o := range m {
		o.OnMStep(s)
	}
}
func (m multiObserver) OnIterEnd(s IterStats) {
	for _, o := range m {
		o.OnIterEnd(s)
	}
}

// Observers combines several observers into one that relays every callback
// in argument order; nils are dropped. Returns nil when nothing remains, so
// the result can be attached unconditionally.
func Observers(list ...FitObserver) FitObserver {
	var kept multiObserver
	for _, o := range list {
		if o != nil {
			kept = append(kept, o)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return kept
}

// ProgressObserver returns an observer that writes one human-readable line
// per EM iteration (and one per E-step refresh) to w — the CLIs' -progress
// implementation. The writer is guarded by a mutex so one observer can be
// shared across sequential fits.
func ProgressObserver(w io.Writer, label string) FitObserver {
	return &progressObserver{w: w, label: label}
}

type progressObserver struct {
	mu    sync.Mutex
	w     io.Writer
	label string
}

func (p *progressObserver) prefix() string {
	if p.label == "" {
		return ""
	}
	return p.label + " "
}

func (p *progressObserver) OnIterStart(int) {}

func (p *progressObserver) OnEStep(s EStepStats) {
	p.mu.Lock()
	defer p.mu.Unlock()
	mode := "sampled"
	if s.MAP {
		mode = "MAP"
	}
	fmt.Fprintf(p.w, "%sestep iter=%d: %s reassignment of %d events, entropy %.3f nats (%.2fs)\n",
		p.prefix(), s.Iter, mode, s.Events, s.Entropy, s.Seconds)
}

func (p *progressObserver) OnMStep(MStepStats) {}

func (p *progressObserver) OnIterEnd(s IterStats) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ll := "n/a"
	if !math.IsNaN(s.TrainLL) {
		ll = fmt.Sprintf("%.2f", s.TrainLL)
	}
	fmt.Fprintf(p.w, "%siter %d: LL=%s grad=%.2e (estep %.2fs, mstep %.2fs, kernel %.2fs, ll %.2fs)\n",
		p.prefix(), s.Iter, ll, s.GradNorm, s.EStepSeconds, s.MStepSeconds, s.KernelSeconds, s.LLSeconds)
}

// CollectObserver records every callback in memory — the test and
// diagnostics observer.
type CollectObserver struct {
	mu     sync.Mutex
	Starts []int
	EForms []EStepStats
	MForms []MStepStats
	Iters  []IterStats
}

// OnIterStart implements FitObserver.
func (c *CollectObserver) OnIterStart(iter int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.Starts = append(c.Starts, iter)
}

// OnEStep implements FitObserver.
func (c *CollectObserver) OnEStep(s EStepStats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.EForms = append(c.EForms, s)
}

// OnMStep implements FitObserver.
func (c *CollectObserver) OnMStep(s MStepStats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.MForms = append(c.MForms, s)
}

// OnIterEnd implements FitObserver.
func (c *CollectObserver) OnIterEnd(s IterStats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.Iters = append(c.Iters, s)
}
