package obs

import (
	"fmt"
	"io"
	"sync"
)

// EStepStats describes one E-step (latent branching-structure inference)
// pass of the EM loop.
type EStepStats struct {
	// Iter is the 1-based EM iteration the pass ran in.
	Iter int `json:"iter"`
	// Seconds is the pass's wall time.
	Seconds float64 `json:"seconds"`
	// Entropy is the mean parent-assignment entropy (nats per scored
	// event) of the triggering distributions — the paper's E-step
	// posterior sharpness. Only meaningful when EntropyValid is set (a pass
	// can score zero events); it is never a NaN sentinel.
	Entropy float64 `json:"entropy"`
	// EntropyValid reports whether Entropy was measured.
	EntropyValid bool `json:"entropy_valid"`
	// Events is the number of events whose triggering distribution was
	// scored (asynchronous updates keep the rest on their previous
	// parent).
	Events int `json:"events"`
	// MAP reports whether the pass took argmax assignments (true) or
	// sampled (false).
	MAP bool `json:"map"`
}

// MStepStats describes one M-step (parametric + nonparametric) of the EM
// loop.
type MStepStats struct {
	// Iter is the 1-based EM iteration.
	Iter int `json:"iter"`
	// Seconds is the parametric (gradient-ascent) half's wall time.
	Seconds float64 `json:"seconds"`
	// KernelSeconds is the nonparametric (spectral kernel update) half's
	// wall time; 0 when the kernel update is disabled.
	KernelSeconds float64 `json:"kernel_seconds"`
	// GradNorm is the largest per-dimension L2 gradient norm at the
	// accepted optimum — a convergence signal (→0 as the M-step
	// saturates). Only meaningful when GradNormValid is set; it is never a
	// NaN sentinel.
	GradNorm float64 `json:"grad_norm"`
	// GradNormValid reports whether a gradient norm was collected.
	GradNormValid bool `json:"grad_norm_valid"`
	// Dims is the number of per-dimension optimizations run.
	Dims int `json:"dims"`
}

// IterStats summarizes one completed EM iteration.
type IterStats struct {
	// Iter is the 1-based EM iteration.
	Iter int `json:"iter"`
	// Seconds is the iteration's total wall time.
	Seconds float64 `json:"seconds"`
	// EStepSeconds/MStepSeconds/KernelSeconds/LLSeconds break the wall
	// time into the iteration's phases (0 for phases that did not run).
	EStepSeconds  float64 `json:"estep_seconds"`
	MStepSeconds  float64 `json:"mstep_seconds"`
	KernelSeconds float64 `json:"kernel_seconds"`
	LLSeconds     float64 `json:"ll_seconds"`
	// TrainLL is the training log-likelihood after the iteration, valid
	// only when TrainLLValid is set (it is evaluated whenever an observer
	// is attached, the numerical guard is on, or Config.TrackHistory is
	// set). Unevaluated stats carry the zero value plus a false flag — a
	// NaN sentinel would leak into JSON consumers.
	TrainLL float64 `json:"train_ll"`
	// TrainLLValid reports whether TrainLL was evaluated this iteration.
	TrainLLValid bool `json:"train_ll_valid"`
	// Entropy is the E-step's mean parent-assignment entropy, valid only
	// when EntropyValid is set (no E-step may have run this iteration).
	Entropy float64 `json:"estep_entropy"`
	// EntropyValid reports whether an E-step measured Entropy.
	EntropyValid bool `json:"estep_entropy_valid"`
	// GradNorm mirrors MStepStats.GradNorm, valid when GradNormValid.
	GradNorm float64 `json:"grad_norm"`
	// GradNormValid reports whether GradNorm was collected.
	GradNormValid bool `json:"grad_norm_valid"`
	// EulerSteps counts the compensator Euler grid evaluations performed
	// this iteration (0 under closed-form linear compensators).
	EulerSteps int64 `json:"euler_steps"`
}

// FitObserver receives lifecycle callbacks from a running EM fit. Within
// one fit, callbacks arrive from a single goroutine in the order
// OnIterStart → OnMStep → [OnEStep] → OnIterEnd, with strictly increasing
// 1-based iteration numbers (OnEStep only fires on iterations that refresh
// the branching structure). Observers must only read the stats they are
// handed: the fit guarantees that an attached observer never changes the
// fitted parameters.
type FitObserver interface {
	OnIterStart(iter int)
	OnEStep(s EStepStats)
	OnMStep(s MStepStats)
	OnIterEnd(s IterStats)
}

// RecoveryStats describes one numerical-guard recovery: a health check
// tripped, the fit rolled back to its last healthy iterate and is retrying
// the iteration with a smaller projected-gradient step.
type RecoveryStats struct {
	// Iter is the 1-based EM iteration being retried.
	Iter int `json:"iter"`
	// Attempt is the 1-based recovery attempt within this iteration.
	Attempt int `json:"attempt"`
	// Phase names where the violation was detected ("mstep", "kernels",
	// "loglik").
	Phase string `json:"phase"`
	// Quantity names the failing quantity ("mu", "grad_norm",
	// "train_ll", ...).
	Quantity string `json:"quantity"`
	// Reason is the violation's human-readable account.
	Reason string `json:"reason"`
	// StepScale is the projected-gradient step multiplier the retry will
	// run with.
	StepScale float64 `json:"step_scale"`
}

// RecoveryObserver is optionally implemented by FitObservers that want the
// guard's rollback notifications. Plain observers keep working untouched;
// NotifyRecovery type-asserts.
type RecoveryObserver interface {
	OnRecovery(s RecoveryStats)
}

// NotifyRecovery forwards a recovery to o when it (or, through the
// multi-observer, any of its members) implements RecoveryObserver. Safe on
// nil observers.
func NotifyRecovery(o FitObserver, s RecoveryStats) {
	if r, ok := o.(RecoveryObserver); ok {
		r.OnRecovery(s)
	}
}

// PredictObserver receives progress from Monte-Carlo prediction loops.
// OnDraw may be called concurrently from worker goroutines; done is the
// cumulative number of completed draws, which arrives in no particular
// order. Implementations must be safe for concurrent use.
type PredictObserver interface {
	OnDraw(done, total int)
}

// PredictProgressFunc adapts a function to PredictObserver.
type PredictProgressFunc func(done, total int)

// OnDraw implements PredictObserver.
func (f PredictProgressFunc) OnDraw(done, total int) { f(done, total) }

// multiObserver fans callbacks out to several observers in order.
type multiObserver []FitObserver

func (m multiObserver) OnIterStart(iter int) {
	for _, o := range m {
		o.OnIterStart(iter)
	}
}
func (m multiObserver) OnEStep(s EStepStats) {
	for _, o := range m {
		o.OnEStep(s)
	}
}
func (m multiObserver) OnMStep(s MStepStats) {
	for _, o := range m {
		o.OnMStep(s)
	}
}
func (m multiObserver) OnIterEnd(s IterStats) {
	for _, o := range m {
		o.OnIterEnd(s)
	}
}

// OnRecovery implements RecoveryObserver, relaying to the members that opt
// in.
func (m multiObserver) OnRecovery(s RecoveryStats) {
	for _, o := range m {
		NotifyRecovery(o, s)
	}
}

// Observers combines several observers into one that relays every callback
// in argument order; nils are dropped. Returns nil when nothing remains, so
// the result can be attached unconditionally.
func Observers(list ...FitObserver) FitObserver {
	var kept multiObserver
	for _, o := range list {
		if o != nil {
			kept = append(kept, o)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return kept
}

// ProgressObserver returns an observer that writes one human-readable line
// per EM iteration (and one per E-step refresh) to w — the CLIs' -progress
// implementation. The writer is guarded by a mutex so one observer can be
// shared across sequential fits.
func ProgressObserver(w io.Writer, label string) FitObserver {
	return &progressObserver{w: w, label: label}
}

type progressObserver struct {
	mu    sync.Mutex
	w     io.Writer
	label string
}

func (p *progressObserver) prefix() string {
	if p.label == "" {
		return ""
	}
	return p.label + " "
}

func (p *progressObserver) OnIterStart(int) {}

func (p *progressObserver) OnEStep(s EStepStats) {
	p.mu.Lock()
	defer p.mu.Unlock()
	mode := "sampled"
	if s.MAP {
		mode = "MAP"
	}
	ent := "n/a"
	if s.EntropyValid {
		ent = fmt.Sprintf("%.3f", s.Entropy)
	}
	fmt.Fprintf(p.w, "%sestep iter=%d: %s reassignment of %d events, entropy %s nats (%.2fs)\n",
		p.prefix(), s.Iter, mode, s.Events, ent, s.Seconds)
}

func (p *progressObserver) OnMStep(MStepStats) {}

func (p *progressObserver) OnIterEnd(s IterStats) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ll := "n/a"
	if s.TrainLLValid {
		ll = fmt.Sprintf("%.2f", s.TrainLL)
	}
	grad := "n/a"
	if s.GradNormValid {
		grad = fmt.Sprintf("%.2e", s.GradNorm)
	}
	fmt.Fprintf(p.w, "%siter %d: LL=%s grad=%s (estep %.2fs, mstep %.2fs, kernel %.2fs, ll %.2fs)\n",
		p.prefix(), s.Iter, ll, grad, s.EStepSeconds, s.MStepSeconds, s.KernelSeconds, s.LLSeconds)
}

// OnRecovery implements RecoveryObserver: one loud line per guard rollback.
func (p *progressObserver) OnRecovery(s RecoveryStats) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fmt.Fprintf(p.w, "%sguard iter %d: %s violation in %s (%s) — rolled back, retry %d at step scale %.3g\n",
		p.prefix(), s.Iter, s.Quantity, s.Phase, s.Reason, s.Attempt, s.StepScale)
}

// CollectObserver records every callback in memory — the test and
// diagnostics observer.
type CollectObserver struct {
	mu         sync.Mutex
	Starts     []int
	EForms     []EStepStats
	MForms     []MStepStats
	Iters      []IterStats
	Recoveries []RecoveryStats
}

// OnIterStart implements FitObserver.
func (c *CollectObserver) OnIterStart(iter int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.Starts = append(c.Starts, iter)
}

// OnEStep implements FitObserver.
func (c *CollectObserver) OnEStep(s EStepStats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.EForms = append(c.EForms, s)
}

// OnMStep implements FitObserver.
func (c *CollectObserver) OnMStep(s MStepStats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.MForms = append(c.MForms, s)
}

// OnIterEnd implements FitObserver.
func (c *CollectObserver) OnIterEnd(s IterStats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.Iters = append(c.Iters, s)
}

// OnRecovery implements RecoveryObserver.
func (c *CollectObserver) OnRecovery(s RecoveryStats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.Recoveries = append(c.Recoveries, s)
}
