package obs

import "runtime"

// Memory gauges: one sampler shared by the CLIs' -metrics-json stream
// (captured at every EM-iteration boundary by IterJSONWriter) and the serve
// layer's /metrics endpoint (captured per scrape). The out-of-core fit's
// acceptance criterion — peak resident memory well below the corpus size —
// is read off mem_peak_rss_bytes.

// CaptureMemory samples process memory into reg's gauges:
//
//	mem_heap_inuse_bytes  — bytes in in-use heap spans right now
//	mem_heap_sys_bytes    — heap address space obtained from the OS
//	mem_total_alloc_bytes — cumulative bytes allocated (monotone)
//	mem_peak_rss_bytes    — kernel-reported peak resident set size
//	                        (omitted where the platform cannot report it)
func CaptureMemory(reg *Metrics) {
	if reg == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	reg.Gauge("mem_heap_inuse_bytes").Set(float64(ms.HeapInuse))
	reg.Gauge("mem_heap_sys_bytes").Set(float64(ms.HeapSys))
	reg.Gauge("mem_total_alloc_bytes").Set(float64(ms.TotalAlloc))
	if peak, ok := PeakRSSBytes(); ok {
		reg.Gauge("mem_peak_rss_bytes").Set(float64(peak))
	}
}
