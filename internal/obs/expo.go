package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteText renders the snapshot in the Prometheus text exposition format
// (version 0.0.4) — the chassis-serve /metrics implementation. Instrument
// names are sanitized into the metric-name alphabet (dots and other
// punctuation become underscores) and prefixed with "chassis_"; counters
// keep their value as-is, gauges likewise, and each timer exports two
// series, <name>_seconds_total and <name>_count. Lines come out sorted by
// metric name so consecutive scrapes of an idle registry are byte-identical
// and diff cleanly.
func (s Snapshot) WriteText(w io.Writer) error {
	type line struct{ name, typ, value string }
	lines := make([]line, 0, len(s.Counters)+len(s.Gauges)+2*len(s.Timers))
	for name, v := range s.Counters {
		lines = append(lines, line{metricName(name), "counter", strconv.FormatInt(v, 10)})
	}
	for name, v := range s.Gauges {
		lines = append(lines, line{metricName(name), "gauge", formatFloat(v)})
	}
	for name, t := range s.Timers {
		base := metricName(name)
		lines = append(lines, line{base + "_seconds_total", "counter", formatFloat(t.Seconds)})
		lines = append(lines, line{base + "_count", "counter", strconv.FormatInt(t.Count, 10)})
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i].name < lines[j].name })
	for _, l := range lines {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %s\n", l.name, l.typ, l.name, l.value); err != nil {
			return err
		}
	}
	return nil
}

// metricName maps a registry instrument name onto the Prometheus metric
// name alphabet [a-zA-Z0-9_:], prefixed with the chassis namespace.
func metricName(name string) string {
	var b strings.Builder
	b.Grow(len("chassis_") + len(name))
	b.WriteString("chassis_")
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// formatFloat renders a float the way the exposition format expects:
// shortest round-trip decimal, so scrapes are stable and exact.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
