package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// iterSnapshot is one line of the -metrics-json stream: the iteration's
// stats plus, when a registry is attached, the cumulative metrics state at
// the end of the iteration.
type iterSnapshot struct {
	IterStats
	Metrics *Snapshot `json:"metrics,omitempty"`
}

// iterSnapshotJSON is the wire form: quantities that were not measured this
// iteration (their Valid flag is false) are explicit nulls, so downstream
// JSON consumers never see a NaN sentinel — encoding/json would refuse it —
// and never mistake an unmeasured zero for a measurement.
type iterSnapshotJSON struct {
	Iter          int      `json:"iter"`
	Seconds       float64  `json:"seconds"`
	EStepSeconds  float64  `json:"estep_seconds"`
	MStepSeconds  float64  `json:"mstep_seconds"`
	KernelSeconds float64  `json:"kernel_seconds"`
	LLSeconds     float64  `json:"ll_seconds"`
	TrainLL       *float64 `json:"train_ll"`
	Entropy       *float64 `json:"estep_entropy"`
	GradNorm      *float64 `json:"grad_norm"`
	EulerSteps    int64    `json:"euler_steps"`

	Metrics *Snapshot `json:"metrics,omitempty"`
}

// validFinite keeps a measured, finite value; everything else (unmeasured,
// or a NaN/Inf that slipped past the guard) becomes null.
func validFinite(v float64, valid bool) *float64 {
	if !valid || v != v || v-v != 0 { // invalid, NaN, or ±Inf
		return nil
	}
	return &v
}

// MarshalJSON implements json.Marshaler for the snapshot line.
func (s iterSnapshot) MarshalJSON() ([]byte, error) {
	return json.Marshal(iterSnapshotJSON{
		Iter: s.Iter, Seconds: s.Seconds,
		EStepSeconds: s.EStepSeconds, MStepSeconds: s.MStepSeconds,
		KernelSeconds: s.KernelSeconds, LLSeconds: s.LLSeconds,
		TrainLL:    validFinite(s.TrainLL, s.TrainLLValid),
		Entropy:    validFinite(s.Entropy, s.EntropyValid),
		GradNorm:   validFinite(s.GradNorm, s.GradNormValid),
		EulerSteps: s.EulerSteps,
		Metrics:    s.Metrics,
	})
}

// IterJSONWriter is a FitObserver that appends one JSON object per
// completed EM iteration to a file — the CLIs' -metrics-json
// implementation. Each line carries the iteration's phase timings, training
// LL, E-step entropy, and gradient norm; when a Metrics registry is
// attached (Attach), the cumulative snapshot rides along. Lines are flushed
// per iteration so a fit killed mid-run leaves every completed iteration on
// disk.
type IterJSONWriter struct {
	mu      sync.Mutex
	f       *os.File
	metrics *Metrics
	lines   int
}

// NewIterJSONWriter creates (truncating) the snapshot file.
func NewIterJSONWriter(path string) (*IterJSONWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: metrics snapshot file: %w", err)
	}
	return &IterJSONWriter{f: f}, nil
}

// Attach includes reg's cumulative snapshot in every subsequent line.
func (w *IterJSONWriter) Attach(reg *Metrics) { w.metrics = reg }

// Lines returns how many snapshots have been written.
func (w *IterJSONWriter) Lines() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lines
}

// OnIterStart implements FitObserver.
func (w *IterJSONWriter) OnIterStart(int) {}

// OnEStep implements FitObserver.
func (w *IterJSONWriter) OnEStep(EStepStats) {}

// OnMStep implements FitObserver.
func (w *IterJSONWriter) OnMStep(MStepStats) {}

// OnIterEnd implements FitObserver: append one snapshot line and flush it.
// With a registry attached, memory gauges are refreshed first, so every
// line carries the heap and peak-RSS state at that iteration boundary.
func (w *IterJSONWriter) OnIterEnd(s IterStats) {
	w.mu.Lock()
	defer w.mu.Unlock()
	snap := iterSnapshot{IterStats: s}
	if w.metrics != nil {
		CaptureMemory(w.metrics)
		ms := w.metrics.Snapshot()
		snap.Metrics = &ms
	}
	blob, err := json.Marshal(snap)
	if err != nil {
		return // stats are plain numbers; only a broken Metrics map could fail
	}
	if _, err := w.f.Write(append(blob, '\n')); err != nil {
		return
	}
	w.f.Sync()
	w.lines++
}

// Close flushes and closes the snapshot file.
func (w *IterJSONWriter) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}
