package diffusion

import (
	"math"
	"testing"

	"chassis/internal/rng"
	"chassis/internal/socialnet"
)

// lineGraph builds 0 → 1 → 2 → ... → n-1 (each next user follows the
// previous one).
func lineGraph(n int) *socialnet.Graph {
	g, _ := socialnet.ErdosRenyi(rng.New(1), n, 0)
	for u := 0; u < n-1; u++ {
		g.AddEdge(u, u+1)
	}
	return g
}

func TestClassicICProbs(t *testing.T) {
	g := lineGraph(3)
	p := ClassicIC(g)
	// User 1 follows exactly one user (0): p(0→1) = 1.
	if p(0, 1) != 1 {
		t.Errorf("p(0,1) = %g, want 1", p(0, 1))
	}
	// User 0 follows nobody: p(x→0) = 0.
	if p(1, 0) != 0 {
		t.Errorf("p(1,0) = %g, want 0", p(1, 0))
	}
}

func TestSimulateICDeterministicChain(t *testing.T) {
	g := lineGraph(5)
	always := func(u, v int) float64 { return 1 }
	active := SimulateIC(g, always, []int{0}, rng.New(2))
	if len(active) != 5 {
		t.Errorf("full chain should activate, got %d", len(active))
	}
	never := func(u, v int) float64 { return 0 }
	active = SimulateIC(g, never, []int{0}, rng.New(2))
	if len(active) != 1 {
		t.Errorf("only the seed should activate, got %d", len(active))
	}
	// Invalid and duplicate seeds are ignored.
	active = SimulateIC(g, always, []int{-1, 99, 2, 2}, rng.New(2))
	if !active[2] || !active[4] || active[0] {
		t.Errorf("seeding mid-chain wrong: %v", active)
	}
}

func TestSimulateICSpreadProbability(t *testing.T) {
	// Two-node graph with p = 0.3: activation frequency ≈ 0.3.
	g, _ := socialnet.ErdosRenyi(rng.New(1), 2, 0)
	g.AddEdge(0, 1)
	p := func(u, v int) float64 { return 0.3 }
	r := rng.New(3)
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if SimulateIC(g, p, []int{0}, r.Split(int64(i)))[1] {
			hits++
		}
	}
	if f := float64(hits) / n; math.Abs(f-0.3) > 0.02 {
		t.Errorf("activation frequency = %g, want ~0.3", f)
	}
}

func TestConformityICRedistributes(t *testing.T) {
	// Star: user 2 follows users 0 and 1. Classic IC gives each 1/2;
	// conformity 3:1 toward user 0 gives 0.75/0.25.
	g, _ := socialnet.ErdosRenyi(rng.New(1), 3, 0)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	conf := func(receiver, source int) float64 {
		if receiver == 2 && source == 0 {
			return 0.9
		}
		if receiver == 2 && source == 1 {
			return 0.3
		}
		return 0
	}
	p := ConformityIC(g, conf)
	if math.Abs(p(0, 2)-0.75) > 1e-12 || math.Abs(p(1, 2)-0.25) > 1e-12 {
		t.Errorf("conformity probs = %g, %g; want 0.75, 0.25", p(0, 2), p(1, 2))
	}
	// Receiver with no conformity signal falls back to classic.
	g.AddEdge(0, 1)
	p = ConformityIC(g, conf)
	if p(0, 1) != 1 {
		t.Errorf("fallback p(0,1) = %g, want 1 (classic)", p(0, 1))
	}
}

func TestSimulateLT(t *testing.T) {
	// Chain with single followee: threshold ~U(0,1) vs weight 1 — each hop
	// activates iff threshold ≤ 1, i.e. always.
	g := lineGraph(4)
	active := SimulateLT(g, []int{0}, rng.New(4))
	if len(active) != 4 {
		t.Errorf("LT chain should fully activate, got %d", len(active))
	}
	// No seeds: nothing activates.
	if n := len(SimulateLT(g, nil, rng.New(4))); n != 0 {
		t.Errorf("LT with no seeds activated %d", n)
	}
}

func TestEstimateSpreadMonotoneInProb(t *testing.T) {
	g, err := socialnet.BarabasiAlbert(rng.New(5), 60, 2, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	low := EstimateSpread(g, func(u, v int) float64 { return 0.05 }, []int{0}, 200, rng.New(6))
	high := EstimateSpread(g, func(u, v int) float64 { return 0.4 }, []int{0}, 200, rng.New(6))
	if high <= low {
		t.Errorf("spread should grow with probability: %g vs %g", low, high)
	}
	if low < 1 {
		t.Errorf("spread must include the seed: %g", low)
	}
}

func TestGreedySeeds(t *testing.T) {
	g, err := socialnet.BarabasiAlbert(rng.New(7), 40, 2, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	prob := ClassicIC(g)
	seeds, spread, err := GreedySeeds(g, prob, 3, 60, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 3 {
		t.Fatalf("got %d seeds", len(seeds))
	}
	seen := map[int]bool{}
	for _, s := range seeds {
		if s < 0 || s >= g.N || seen[s] {
			t.Fatalf("bad seed set %v", seeds)
		}
		seen[s] = true
	}
	// Greedy should beat an arbitrary low-degree seed set.
	worst := []int{g.N - 1, g.N - 2, g.N - 3}
	base := EstimateSpread(g, prob, worst, 200, rng.New(9))
	if spread < base {
		t.Errorf("greedy spread %g below arbitrary baseline %g", spread, base)
	}
	if _, _, err := GreedySeeds(g, prob, 0, 10, rng.New(1)); err == nil {
		t.Error("k=0 must fail")
	}
	if _, _, err := GreedySeeds(g, prob, 999, 10, rng.New(1)); err == nil {
		t.Error("k>N must fail")
	}
}
