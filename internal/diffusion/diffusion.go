// Package diffusion implements the predictive diffusion models the paper's
// introduction builds on: the Independent Cascade (IC) and Linear Threshold
// (LT) models, plus the conformity-aware IC variant of Example 1.1 —
// activation probabilities modulated by pairwise conformity instead of the
// structure-only 1/indegree rule. Monte-Carlo spread estimation and greedy
// seed selection support the viral-marketing example.
package diffusion

import (
	"errors"
	"fmt"

	"chassis/internal/rng"
	"chassis/internal/socialnet"
)

// EdgeProb returns the probability that active user u activates follower v.
type EdgeProb func(u, v int) float64

// ClassicIC is the standard weighted-cascade rule p(u→v) = 1/indegree(v),
// where indegree counts how many users v follows (Example 1.1's
// conformity-unaware control).
func ClassicIC(g *socialnet.Graph) EdgeProb {
	return func(u, v int) float64 {
		d := g.InDegree(v)
		if d == 0 {
			return 0
		}
		return 1 / float64(d)
	}
}

// ConformityIC modulates the weighted-cascade rule by the receiver's
// conformity to the sender: p(u→v) ∝ conf(v, u), renormalized so each
// receiver's incoming probabilities still sum to one — Example 1.1's
// conformity-aware variant (U₃ becomes likelier to activate than U₂ when
// it conforms more to U₅, regardless of degree).
func ConformityIC(g *socialnet.Graph, conf func(receiver, source int) float64) EdgeProb {
	// Precompute per-receiver normalizers.
	norm := make([]float64, g.N)
	for v := 0; v < g.N; v++ {
		for _, u := range g.Followees(v) {
			c := conf(v, u)
			if c > 0 {
				norm[v] += c
			}
		}
	}
	return func(u, v int) float64 {
		if norm[v] <= 0 {
			return ClassicIC(g)(u, v)
		}
		c := conf(v, u)
		if c < 0 {
			c = 0
		}
		return c / norm[v]
	}
}

// SimulateIC runs one Independent Cascade from the seed set: each newly
// activated user gets one chance to activate each follower. Returns the
// activated set (including seeds).
func SimulateIC(g *socialnet.Graph, prob EdgeProb, seeds []int, r *rng.RNG) map[int]bool {
	active := make(map[int]bool, len(seeds))
	frontier := make([]int, 0, len(seeds))
	for _, s := range seeds {
		if s >= 0 && s < g.N && !active[s] {
			active[s] = true
			frontier = append(frontier, s)
		}
	}
	for len(frontier) > 0 {
		var next []int
		for _, u := range frontier {
			for _, v := range g.Followers(u) {
				if active[v] {
					continue
				}
				if r.Bernoulli(prob(u, v)) {
					active[v] = true
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return active
}

// SimulateLT runs one Linear Threshold cascade: each user draws a uniform
// threshold; a user activates when the summed weights of its active
// followees exceed it. Edge weights are 1/#followees (the uniform LT
// instantiation).
func SimulateLT(g *socialnet.Graph, seeds []int, r *rng.RNG) map[int]bool {
	threshold := make([]float64, g.N)
	for v := range threshold {
		threshold[v] = r.Float64()
	}
	active := make(map[int]bool, len(seeds))
	for _, s := range seeds {
		if s >= 0 && s < g.N {
			active[s] = true
		}
	}
	for {
		changed := false
		for v := 0; v < g.N; v++ {
			if active[v] {
				continue
			}
			followees := g.Followees(v)
			if len(followees) == 0 {
				continue
			}
			var mass float64
			for _, u := range followees {
				if active[u] {
					mass += 1 / float64(len(followees))
				}
			}
			if mass >= threshold[v] {
				active[v] = true
				changed = true
			}
		}
		if !changed {
			return active
		}
	}
}

// EstimateSpread Monte-Carlo-estimates the expected IC cascade size of a
// seed set.
func EstimateSpread(g *socialnet.Graph, prob EdgeProb, seeds []int, rounds int, r *rng.RNG) float64 {
	if rounds <= 0 {
		rounds = 100
	}
	var total float64
	for i := 0; i < rounds; i++ {
		total += float64(len(SimulateIC(g, prob, seeds, r.Split(int64(i)))))
	}
	return total / float64(rounds)
}

// GreedySeeds picks k seeds by greedy marginal-gain maximization under
// Monte-Carlo spread estimation — the standard (1−1/e) influence
// maximization baseline the IM literature the paper cites builds on.
func GreedySeeds(g *socialnet.Graph, prob EdgeProb, k, rounds int, r *rng.RNG) ([]int, float64, error) {
	if k <= 0 || k > g.N {
		return nil, 0, fmt.Errorf("diffusion: k=%d outside [1,%d]", k, g.N)
	}
	if g.N == 0 {
		return nil, 0, errors.New("diffusion: empty graph")
	}
	var seeds []int
	chosen := make(map[int]bool)
	var bestSpread float64
	for len(seeds) < k {
		bestU, bestGain := -1, -1.0
		for u := 0; u < g.N; u++ {
			if chosen[u] {
				continue
			}
			sp := EstimateSpread(g, prob, append(seeds[:len(seeds):len(seeds)], u), rounds, r.Split(int64(u)))
			if gain := sp - bestSpread; gain > bestGain {
				bestGain = gain
				bestU = u
			}
		}
		seeds = append(seeds, bestU)
		chosen[bestU] = true
		bestSpread += bestGain
	}
	return seeds, bestSpread, nil
}
