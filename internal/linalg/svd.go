package linalg

import (
	"errors"
	"math"
)

// SVDResult holds a thin singular value decomposition A = U·diag(S)·Vᵀ with
// U (m×k), S (k), V (n×k), k = min(m, n). Singular values are sorted in
// decreasing order.
type SVDResult struct {
	U *Matrix
	S []float64
	V *Matrix
}

// SVD computes the thin singular value decomposition of A using the
// one-sided Jacobi method: Jacobi rotations orthogonalize the columns of a
// working copy of A (tall orientation), after which column norms are the
// singular values and the accumulated rotations give V. It is O(n²·m·sweeps)
// — entirely adequate for the influence matrices (M ≤ a few hundred) ADM4's
// singular-value thresholding operates on.
func SVD(a *Matrix) (*SVDResult, error) {
	if a.Rows == 0 || a.Cols == 0 {
		return nil, errors.New("linalg: SVD of empty matrix")
	}
	// Work on a tall matrix; if wide, decompose the transpose and swap U/V.
	if a.Rows < a.Cols {
		r, err := SVD(a.T())
		if err != nil {
			return nil, err
		}
		return &SVDResult{U: r.V, S: r.S, V: r.U}, nil
	}
	m, n := a.Rows, a.Cols
	u := a.Clone()
	v := Identity(n)

	const (
		maxSweeps = 60
		eps       = 1e-14
	)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		offDiag := 0.0
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				// Compute the 2x2 Gram entries for columns p, q.
				var app, aqq, apq float64
				for i := 0; i < m; i++ {
					up, uq := u.At(i, p), u.At(i, q)
					app += up * up
					aqq += uq * uq
					apq += up * uq
				}
				if math.Abs(apq) <= eps*math.Sqrt(app*aqq) {
					continue
				}
				offDiag += math.Abs(apq)
				// Jacobi rotation annihilating the (p,q) Gram entry.
				tau := (aqq - app) / (2 * apq)
				var t float64
				if tau >= 0 {
					t = 1 / (tau + math.Sqrt(1+tau*tau))
				} else {
					t = -1 / (-tau + math.Sqrt(1+tau*tau))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				for i := 0; i < m; i++ {
					up, uq := u.At(i, p), u.At(i, q)
					u.Set(i, p, c*up-s*uq)
					u.Set(i, q, s*up+c*uq)
				}
				for i := 0; i < n; i++ {
					vp, vq := v.At(i, p), v.At(i, q)
					v.Set(i, p, c*vp-s*vq)
					v.Set(i, q, s*vp+c*vq)
				}
			}
		}
		if offDiag == 0 {
			break
		}
	}

	// Column norms are singular values; normalize U's columns.
	s := make([]float64, n)
	for j := 0; j < n; j++ {
		var norm float64
		for i := 0; i < m; i++ {
			norm += u.At(i, j) * u.At(i, j)
		}
		norm = math.Sqrt(norm)
		s[j] = norm
		if norm > 0 {
			inv := 1 / norm
			for i := 0; i < m; i++ {
				u.Set(i, j, u.At(i, j)*inv)
			}
		}
	}

	// Sort by decreasing singular value.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 0; i < n-1; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if s[order[j]] > s[order[best]] {
				best = j
			}
		}
		order[i], order[best] = order[best], order[i]
	}
	su := NewMatrix(m, n)
	sv := NewMatrix(n, n)
	ss := make([]float64, n)
	for newJ, oldJ := range order {
		ss[newJ] = s[oldJ]
		for i := 0; i < m; i++ {
			su.Set(i, newJ, u.At(i, oldJ))
		}
		for i := 0; i < n; i++ {
			sv.Set(i, newJ, v.At(i, oldJ))
		}
	}
	return &SVDResult{U: su, S: ss, V: sv}, nil
}

// Reconstruct returns U·diag(S)·Vᵀ.
func (r *SVDResult) Reconstruct() *Matrix {
	m, k := r.U.Rows, len(r.S)
	n := r.V.Rows
	out := NewMatrix(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var sum float64
			for l := 0; l < k; l++ {
				sum += r.U.At(i, l) * r.S[l] * r.V.At(j, l)
			}
			out.Set(i, j, sum)
		}
	}
	return out
}

// NuclearNorm returns the sum of singular values of A.
func NuclearNorm(a *Matrix) (float64, error) {
	r, err := SVD(a)
	if err != nil {
		return 0, err
	}
	var s float64
	for _, v := range r.S {
		s += v
	}
	return s, nil
}

// SoftThreshold applies the L1 proximal operator sign(x)·max(|x|−tau, 0)
// elementwise, returning a new matrix. This is the sparsity prox of ADM4.
func SoftThreshold(a *Matrix, tau float64) *Matrix {
	out := a.Clone()
	for i, v := range out.Data {
		switch {
		case v > tau:
			out.Data[i] = v - tau
		case v < -tau:
			out.Data[i] = v + tau
		default:
			out.Data[i] = 0
		}
	}
	return out
}

// SVT applies singular value thresholding — the proximal operator of the
// nuclear norm: shrink every singular value by tau (clamping at zero) and
// reconstruct. This is the low-rank prox of ADM4.
func SVT(a *Matrix, tau float64) (*Matrix, error) {
	r, err := SVD(a)
	if err != nil {
		return nil, err
	}
	for i := range r.S {
		r.S[i] -= tau
		if r.S[i] < 0 {
			r.S[i] = 0
		}
	}
	return r.Reconstruct(), nil
}

// EffectiveRank counts singular values above tol·s_max.
func EffectiveRank(a *Matrix, tol float64) (int, error) {
	r, err := SVD(a)
	if err != nil {
		return 0, err
	}
	if len(r.S) == 0 || r.S[0] == 0 {
		return 0, nil
	}
	count := 0
	for _, s := range r.S {
		if s > tol*r.S[0] {
			count++
		}
	}
	return count, nil
}
