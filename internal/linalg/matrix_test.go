package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromRowsAndAccessors(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("shape = %dx%d", m.Rows, m.Cols)
	}
	if m.At(1, 0) != 3 || m.At(2, 1) != 6 {
		t.Error("At wrong")
	}
	m.Set(0, 1, 9)
	m.Add(0, 1, 1)
	if m.At(0, 1) != 10 {
		t.Error("Set/Add wrong")
	}
	if got := m.Col(0); got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Errorf("Col = %v", got)
	}
	if _, err := FromRows([][]float64{{1}, {1, 2}}); err == nil {
		t.Error("ragged rows must fail")
	}
	if e, _ := FromRows(nil); e.Rows != 0 {
		t.Error("empty FromRows should give 0x0")
	}
}

func TestMul(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Errorf("Mul[%d][%d] = %g, want %g", i, j, c.At(i, j), want[i][j])
			}
		}
	}
	if _, err := a.Mul(NewMatrix(3, 3)); err == nil {
		t.Error("mismatched Mul must fail")
	}
}

func TestIdentityAndTranspose(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	id := Identity(3)
	c, _ := a.Mul(id)
	for i := range a.Data {
		if c.Data[i] != a.Data[i] {
			t.Fatal("A·I != A")
		}
	}
	at := a.T()
	if at.Rows != 3 || at.Cols != 2 || at.At(2, 1) != 6 {
		t.Error("transpose wrong")
	}
}

func TestAddSubScaleNorms(t *testing.T) {
	a, _ := FromRows([][]float64{{3, -4}})
	if a.Frobenius() != 5 {
		t.Errorf("Frobenius = %g, want 5", a.Frobenius())
	}
	if a.L1() != 7 {
		t.Errorf("L1 = %g, want 7", a.L1())
	}
	if a.MaxAbs() != 4 {
		t.Errorf("MaxAbs = %g, want 4", a.MaxAbs())
	}
	b := a.Clone().Scale(2)
	if b.At(0, 0) != 6 {
		t.Error("Scale wrong")
	}
	sum, err := a.AddM(b)
	if err != nil || sum.At(0, 1) != -12 {
		t.Errorf("AddM wrong: %v %v", sum, err)
	}
	diff, err := b.SubM(a)
	if err != nil || diff.At(0, 0) != 3 {
		t.Errorf("SubM wrong: %v %v", diff, err)
	}
	if _, err := a.AddM(NewMatrix(2, 2)); err == nil {
		t.Error("mismatched AddM must fail")
	}
	if _, err := a.SubM(NewMatrix(2, 2)); err == nil {
		t.Error("mismatched SubM must fail")
	}
	neg, _ := FromRows([][]float64{{-1, 2}, {3, -4}})
	neg.ClampNonNegative()
	if neg.At(0, 0) != 0 || neg.At(1, 1) != 0 || neg.At(0, 1) != 2 {
		t.Error("ClampNonNegative wrong")
	}
}

func TestVectorHelpers(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Error("Dot wrong")
	}
	if Norm2([]float64{3, 4}) != 5 {
		t.Error("Norm2 wrong")
	}
	y := []float64{1, 1}
	AXPY(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Errorf("AXPY = %v", y)
	}
}

func randomMatrix(r *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.NormFloat64()
	}
	return m
}

func TestSVDReconstruction(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, shape := range [][2]int{{4, 4}, {6, 3}, {3, 6}, {1, 5}, {5, 1}, {10, 10}} {
		a := randomMatrix(r, shape[0], shape[1])
		res, err := SVD(a)
		if err != nil {
			t.Fatal(err)
		}
		back := res.Reconstruct()
		diff, _ := back.SubM(a)
		if rel := diff.Frobenius() / (a.Frobenius() + 1e-300); rel > 1e-10 {
			t.Errorf("SVD reconstruction error %g for shape %v", rel, shape)
		}
		// Singular values sorted decreasing and non-negative.
		for i := 1; i < len(res.S); i++ {
			if res.S[i] > res.S[i-1]+1e-12 {
				t.Errorf("singular values not sorted: %v", res.S)
			}
		}
		for _, s := range res.S {
			if s < 0 {
				t.Errorf("negative singular value %g", s)
			}
		}
	}
}

func TestSVDOrthonormal(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	a := randomMatrix(r, 8, 5)
	res, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	utu, _ := res.U.T().Mul(res.U)
	vtv, _ := res.V.T().Mul(res.V)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(utu.At(i, j)-want) > 1e-10 {
				t.Errorf("UᵀU[%d][%d] = %g", i, j, utu.At(i, j))
			}
			if math.Abs(vtv.At(i, j)-want) > 1e-10 {
				t.Errorf("VᵀV[%d][%d] = %g", i, j, vtv.At(i, j))
			}
		}
	}
}

func TestSVDKnownValues(t *testing.T) {
	// diag(3, 2) has singular values 3, 2.
	a, _ := FromRows([][]float64{{3, 0}, {0, 2}})
	res, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.S[0]-3) > 1e-12 || math.Abs(res.S[1]-2) > 1e-12 {
		t.Errorf("singular values = %v, want [3 2]", res.S)
	}
	// Rank-1 matrix: second singular value 0.
	b, _ := FromRows([][]float64{{1, 2}, {2, 4}})
	res, _ = SVD(b)
	if math.Abs(res.S[1]) > 1e-10 {
		t.Errorf("rank-1 matrix second sv = %g, want 0", res.S[1])
	}
	if _, err := SVD(NewMatrix(0, 0)); err == nil {
		t.Error("empty SVD must fail")
	}
}

func TestNuclearNormAndRank(t *testing.T) {
	a, _ := FromRows([][]float64{{3, 0}, {0, 2}})
	nn, err := NuclearNorm(a)
	if err != nil || math.Abs(nn-5) > 1e-10 {
		t.Errorf("NuclearNorm = %g, want 5 (%v)", nn, err)
	}
	rank, err := EffectiveRank(a, 1e-9)
	if err != nil || rank != 2 {
		t.Errorf("EffectiveRank = %d, want 2", rank)
	}
	b, _ := FromRows([][]float64{{1, 2}, {2, 4}})
	rank, _ = EffectiveRank(b, 1e-9)
	if rank != 1 {
		t.Errorf("rank-1 EffectiveRank = %d", rank)
	}
	z := NewMatrix(2, 2)
	rank, _ = EffectiveRank(z, 1e-9)
	if rank != 0 {
		t.Errorf("zero matrix rank = %d", rank)
	}
}

func TestSoftThreshold(t *testing.T) {
	a, _ := FromRows([][]float64{{2, -0.5}, {0.3, -3}})
	out := SoftThreshold(a, 1)
	want := [][]float64{{1, 0}, {0, -2}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if out.At(i, j) != want[i][j] {
				t.Errorf("SoftThreshold[%d][%d] = %g, want %g", i, j, out.At(i, j), want[i][j])
			}
		}
	}
	if a.At(0, 0) != 2 {
		t.Error("SoftThreshold must not mutate input")
	}
}

func TestSVT(t *testing.T) {
	a, _ := FromRows([][]float64{{3, 0}, {0, 1}})
	out, err := SVT(a, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	// Singular values 3, 1 -> 1.5, 0: result ≈ diag(1.5, 0).
	if math.Abs(out.At(0, 0)-1.5) > 1e-10 || math.Abs(out.At(1, 1)) > 1e-10 {
		t.Errorf("SVT = %v", out.Data)
	}
	// SVT with tau=0 is identity.
	same, _ := SVT(a, 0)
	diff, _ := same.SubM(a)
	if diff.Frobenius() > 1e-10 {
		t.Error("SVT(.,0) must reproduce input")
	}
}

// Property: SVD reconstructs arbitrary random matrices and the Frobenius
// norm equals the L2 norm of the singular values.
func TestSVDProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := r.Intn(8) + 1
		cols := r.Intn(8) + 1
		a := randomMatrix(r, rows, cols)
		res, err := SVD(a)
		if err != nil {
			return false
		}
		back := res.Reconstruct()
		diff, _ := back.SubM(a)
		if diff.Frobenius() > 1e-9*(1+a.Frobenius()) {
			return false
		}
		var svNorm float64
		for _, s := range res.S {
			svNorm += s * s
		}
		return math.Abs(math.Sqrt(svNorm)-a.Frobenius()) < 1e-9*(1+a.Frobenius())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: soft-thresholding shrinks the L1 norm and never flips signs.
func TestSoftThresholdProperty(t *testing.T) {
	f := func(seed int64, tauRaw float64) bool {
		r := rand.New(rand.NewSource(seed))
		tau := math.Abs(tauRaw)
		if math.IsNaN(tau) || math.IsInf(tau, 0) {
			tau = 1
		}
		a := randomMatrix(r, 3, 3)
		out := SoftThreshold(a, tau)
		if out.L1() > a.L1()+1e-12 {
			return false
		}
		for i := range a.Data {
			if out.Data[i]*a.Data[i] < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
