// Package linalg is the dense linear-algebra substrate for the CHASSIS
// reproduction. The paper's ADM4 baseline regularizes the influence matrix
// with a nuclear norm (low-rank) plus an L1 norm (sparsity); evaluating the
// proximal operators of those penalties requires an SVD, which this package
// implements from scratch (one-sided Jacobi) since only the standard library
// is available.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative matrix dimensions")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must be equally long.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("linalg: row %d has %d entries, want %d", i, len(r), cols)
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add increments element (i, j) by v.
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Mul returns m·b.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.Cols != b.Rows {
		return nil, fmt.Errorf("linalg: cannot multiply %dx%d by %dx%d", m.Rows, m.Cols, b.Rows, b.Cols)
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		mrow := m.Row(i)
		orow := out.Row(i)
		for k := 0; k < m.Cols; k++ {
			a := mrow[k]
			if a == 0 {
				continue
			}
			brow := b.Row(k)
			for j := range orow {
				orow[j] += a * brow[j]
			}
		}
	}
	return out, nil
}

// Scale multiplies every element by s in place and returns m.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// AddM returns m + b as a new matrix.
func (m *Matrix) AddM(b *Matrix) (*Matrix, error) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return nil, errors.New("linalg: dimension mismatch in AddM")
	}
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] += b.Data[i]
	}
	return out, nil
}

// SubM returns m - b as a new matrix.
func (m *Matrix) SubM(b *Matrix) (*Matrix, error) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return nil, errors.New("linalg: dimension mismatch in SubM")
	}
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] -= b.Data[i]
	}
	return out, nil
}

// Frobenius returns the Frobenius norm.
func (m *Matrix) Frobenius() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute element (0 for empty matrices).
func (m *Matrix) MaxAbs() float64 {
	var best float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > best {
			best = a
		}
	}
	return best
}

// L1 returns the entrywise L1 norm.
func (m *Matrix) L1() float64 {
	var s float64
	for _, v := range m.Data {
		s += math.Abs(v)
	}
	return s
}

// ClampNonNegative zeroes negative entries in place and returns m. The
// excitation matrices of Hawkes processes are constrained to α ≥ 0.
func (m *Matrix) ClampNonNegative() *Matrix {
	for i, v := range m.Data {
		if v < 0 {
			m.Data[i] = 0
		}
	}
	return m
}

// Dot returns the inner product of two equally sized vectors.
func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of a vector.
func Norm2(a []float64) float64 { return math.Sqrt(Dot(a, a)) }

// AXPY computes y += alpha*x in place.
func AXPY(alpha float64, x, y []float64) {
	for i := range x {
		y[i] += alpha * x[i]
	}
}
