package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %g, want %g (±%g)", what, got, want, tol)
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	approx(t, Mean(xs), 5, 1e-12, "Mean")
	approx(t, Variance(xs), 4, 1e-12, "Variance")
	approx(t, StdDev(xs), 2, 1e-12, "StdDev")
	if Mean(nil) != 0 || Variance(nil) != 0 || Variance([]float64{3}) != 0 {
		t.Error("degenerate inputs must give 0")
	}
}

func TestPearsonExact(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, r, 1, 1e-12, "Pearson perfect positive")

	yneg := []float64{10, 8, 6, 4, 2}
	r, _ = Pearson(x, yneg)
	approx(t, r, -1, 1e-12, "Pearson perfect negative")

	flat := []float64{3, 3, 3, 3, 3}
	r, _ = Pearson(x, flat)
	approx(t, r, 0, 1e-12, "Pearson vs constant")
}

func TestPearsonKnownValue(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6}
	y := []float64{2, 1, 4, 3, 7, 5}
	r, _ := Pearson(x, y)
	// Hand-computed: sxy=16, sxx=17.5, syy=70/3 -> r = 16/sqrt(1225/3).
	approx(t, r, 16/math.Sqrt(1225.0/3.0), 1e-12, "Pearson known")
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err != ErrLength {
		t.Error("length mismatch must return ErrLength")
	}
	r, _ := Pearson([]float64{1}, []float64{2})
	if r != 0 {
		t.Error("single pair correlation must be 0")
	}
}

func TestPearsonAccMatchesBatch(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	var acc PearsonAcc
	var xs, ys []float64
	for i := 0; i < 500; i++ {
		x := r.NormFloat64()
		y := 0.6*x + 0.4*r.NormFloat64()
		acc.Add(x, y)
		xs = append(xs, x)
		ys = append(ys, y)
		if i > 2 && i%97 == 0 {
			batch, _ := Pearson(xs, ys)
			approx(t, acc.Corr(), batch, 1e-9, "incremental vs batch Pearson")
		}
	}
	if acc.N() != 500 {
		t.Errorf("N = %d, want 500", acc.N())
	}
	acc.Reset()
	if acc.N() != 0 || acc.Corr() != 0 {
		t.Error("Reset must clear the accumulator")
	}
}

func TestKendallTau(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	up := []float64{10, 20, 30, 40, 50}
	tau, err := KendallTau(x, up)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, tau, 1, 1e-12, "tau monotone increasing")

	down := []float64{5, 4, 3, 2, 1}
	tau, _ = KendallTau(x, down)
	approx(t, tau, -1, 1e-12, "tau monotone decreasing")

	// Known small case: x=1,2,3 y=1,3,2 -> 2 concordant, 1 discordant, tau=1/3.
	tau, _ = KendallTau([]float64{1, 2, 3}, []float64{1, 3, 2})
	approx(t, tau, 1.0/3.0, 1e-12, "tau known")
}

func TestKendallTauTies(t *testing.T) {
	// τ-b with ties: x = 1,2,2,3  y = 1,2,3,4
	// Pairs: 5 concordant, 0 discordant, 1 tie in x.
	tau, _ := KendallTau([]float64{1, 2, 2, 3}, []float64{1, 2, 3, 4})
	want := 5.0 / math.Sqrt(6*5)
	approx(t, tau, want, 1e-12, "tau-b with ties")

	// All tied on one side -> 0.
	tau, _ = KendallTau([]float64{1, 1, 1}, []float64{1, 2, 3})
	approx(t, tau, 0, 1e-12, "tau all-tied side")
	if _, err := KendallTau([]float64{1}, []float64{1, 2}); err != ErrLength {
		t.Error("length mismatch must return ErrLength")
	}
}

func TestRanks(t *testing.T) {
	got := Ranks([]float64{10, 20, 20, 40})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		approx(t, got[i], want[i], 1e-12, "rank")
	}
}

func TestSpearman(t *testing.T) {
	// Monotone nonlinear relation gives Spearman 1 but Pearson < 1.
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{1, 8, 27, 64, 125}
	rho, err := Spearman(x, y)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, rho, 1, 1e-12, "Spearman monotone")
	p, _ := Pearson(x, y)
	if p >= 1 {
		t.Error("Pearson of cubic should be < 1")
	}
}

func TestMAEMAPE(t *testing.T) {
	mae, err := MAE([]float64{1, 2, 3}, []float64{2, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, mae, 1, 1e-12, "MAE")
	mape, _ := MAPE([]float64{110, 90, 5}, []float64{100, 100, 0})
	approx(t, mape, 0.1, 1e-12, "MAPE skips zero truth")
	if _, err := MAE([]float64{1}, nil); err != ErrLength {
		t.Error("MAE length mismatch")
	}
	m, _ := MAPE([]float64{1}, []float64{0})
	if m != 0 {
		t.Error("all-zero-truth MAPE must be 0")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{5, 1, 3, 2, 4})
	if s.N != 5 || s.Min != 1 || s.Max != 5 {
		t.Errorf("Summary basics wrong: %+v", s)
	}
	approx(t, s.Median, 3, 1e-12, "odd median")
	s = Summarize([]float64{1, 2, 3, 4})
	approx(t, s.Median, 2.5, 1e-12, "even median")
	if z := Summarize(nil); z.N != 0 {
		t.Error("empty Summarize must be zero")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	approx(t, Quantile(xs, 0), 1, 1e-12, "q0")
	approx(t, Quantile(xs, 1), 5, 1e-12, "q1")
	approx(t, Quantile(xs, 0.5), 3, 1e-12, "q50")
	approx(t, Quantile(xs, 0.25), 2, 1e-12, "q25")
	approx(t, Quantile(xs, 0.1), 1.4, 1e-12, "q10 interpolated")
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile must be 0")
	}
}

func TestF1(t *testing.T) {
	approx(t, F1(1, 1), 1, 1e-12, "perfect F1")
	approx(t, F1(0.5, 0.5), 0.5, 1e-12, "balanced F1")
	approx(t, F1(0, 0), 0, 1e-12, "degenerate F1")
	approx(t, F1(1, 0.5), 2.0/3.0, 1e-12, "harmonic mean")
}

// Property: Pearson is bounded, symmetric, and invariant under positive
// affine transforms.
func TestPearsonProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(50) + 3
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
			y[i] = r.NormFloat64()
		}
		rxy, _ := Pearson(x, y)
		ryx, _ := Pearson(y, x)
		if math.Abs(rxy-ryx) > 1e-12 {
			return false
		}
		if rxy < -1 || rxy > 1 {
			return false
		}
		// Affine transform x' = 3x + 7.
		x2 := make([]float64, n)
		for i := range x {
			x2[i] = 3*x[i] + 7
		}
		r2, _ := Pearson(x2, y)
		return math.Abs(rxy-r2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Kendall's tau is antisymmetric under negation of one side.
func TestKendallAntisymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(30) + 3
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
			y[i] = r.NormFloat64()
		}
		tau, _ := KendallTau(x, y)
		negY := make([]float64, n)
		for i := range y {
			negY[i] = -y[i]
		}
		tau2, _ := KendallTau(x, negY)
		return math.Abs(tau+tau2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: quantile is monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(40) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0001; q += 0.05 {
			v := Quantile(xs, q)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		s := Summarize(xs)
		return Quantile(xs, 0) == s.Min && Quantile(xs, 1) == s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
