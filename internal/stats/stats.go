// Package stats implements the statistical primitives CHASSIS relies on:
// Pearson correlation (the context-stance measure of Section 5), Kendall's
// rank correlation (the RankCorr evaluation metric), and assorted summary
// and error measures. Everything is pure Go over float64 slices.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrLength is returned when paired-sample functions receive slices of
// different lengths.
var ErrLength = errors.New("stats: paired samples must have equal length")

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance, or 0 for fewer than two samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Pearson returns the Pearson correlation coefficient of the paired samples.
// Degenerate inputs (length < 2, or a zero-variance side) yield 0, matching
// the paper's convention that no co-variation means no measurable stance
// alignment.
func Pearson(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, ErrLength
	}
	return pearson(x, y), nil
}

func pearson(x, y []float64) float64 {
	n := len(x)
	if n < 2 {
		return 0
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if !(sxx > 0) || !(syy > 0) {
		return 0
	}
	r := sxy / math.Sqrt(sxx*syy)
	if math.IsNaN(r) {
		return 0
	}
	// Clamp round-off.
	if r > 1 {
		r = 1
	} else if r < -1 {
		r = -1
	}
	return r
}

// PearsonAcc accumulates paired samples and reports their Pearson
// correlation incrementally. It is the workhorse behind the per-pair stance
// vectors p_i(t), p_j(t): conformity updates append one polarity pair per
// parent-child interaction and re-read the correlation in O(1).
//
// The zero value is ready to use.
type PearsonAcc struct {
	n                int
	sx, sy, sxx, syy float64
	sxy              float64
}

// Add appends one (x, y) pair.
func (p *PearsonAcc) Add(x, y float64) {
	p.n++
	p.sx += x
	p.sy += y
	p.sxx += x * x
	p.syy += y * y
	p.sxy += x * y
}

// N returns the number of accumulated pairs.
func (p *PearsonAcc) N() int { return p.n }

// Corr returns the current correlation (0 while degenerate).
func (p *PearsonAcc) Corr() float64 {
	if p.n < 2 {
		return 0
	}
	n := float64(p.n)
	cov := p.sxy - p.sx*p.sy/n
	vx := p.sxx - p.sx*p.sx/n
	vy := p.syy - p.sy*p.sy/n
	// The positivity check is written so a NaN variance (from a NaN or Inf
	// sample poisoning the sums) also lands in the degenerate branch:
	// NaN > 0 is false, whereas NaN <= 0 would be false too.
	if !(vx > 0) || !(vy > 0) {
		return 0
	}
	r := cov / math.Sqrt(vx*vy)
	if math.IsNaN(r) {
		return 0
	}
	if r > 1 {
		r = 1
	} else if r < -1 {
		r = -1
	}
	return r
}

// Reset clears the accumulator.
func (p *PearsonAcc) Reset() { *p = PearsonAcc{} }

// KendallTau returns Kendall's τ-b rank correlation of the paired samples,
// handling ties in either ranking. Degenerate inputs yield 0. The O(n²)
// algorithm is fine for the row-at-a-time influence-matrix comparisons the
// RankCorr metric performs.
func KendallTau(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, ErrLength
	}
	n := len(x)
	if n < 2 {
		return 0, nil
	}
	var concordant, discordant, tiesX, tiesY float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := x[i] - x[j]
			dy := y[i] - y[j]
			switch {
			case dx == 0 && dy == 0:
				// Joint tie: contributes to neither denominator term.
			case dx == 0:
				tiesX++
			case dy == 0:
				tiesY++
			case dx*dy > 0:
				concordant++
			default:
				discordant++
			}
		}
	}
	denom := math.Sqrt((concordant + discordant + tiesX) * (concordant + discordant + tiesY))
	if denom == 0 {
		return 0, nil
	}
	return (concordant - discordant) / denom, nil
}

// Spearman returns Spearman's rank correlation (Pearson over ranks with
// average-rank tie handling).
func Spearman(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, ErrLength
	}
	return pearson(Ranks(x), Ranks(y)), nil
}

// Ranks returns the 1-based average ranks of the samples.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// MAE returns the mean absolute error between predictions and truth.
func MAE(pred, truth []float64) (float64, error) {
	if len(pred) != len(truth) {
		return 0, ErrLength
	}
	if len(pred) == 0 {
		return 0, nil
	}
	var s float64
	for i := range pred {
		s += math.Abs(pred[i] - truth[i])
	}
	return s / float64(len(pred)), nil
}

// MAPE returns the mean absolute percentage error, skipping zero-truth
// entries (and returning 0 if every entry is skipped).
func MAPE(pred, truth []float64) (float64, error) {
	if len(pred) != len(truth) {
		return 0, ErrLength
	}
	var s float64
	var n int
	for i := range pred {
		if truth[i] == 0 {
			continue
		}
		s += math.Abs((pred[i] - truth[i]) / truth[i])
		n++
	}
	if n == 0 {
		return 0, nil
	}
	return s / float64(n), nil
}

// Summary holds the basic descriptive statistics of a sample.
type Summary struct {
	N         int
	Mean, Std float64
	Min, Max  float64
	Median    float64
}

// Summarize computes descriptive statistics; the zero Summary is returned
// for empty input.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Mean: Mean(xs), Std: StdDev(xs), Min: xs[0], Max: xs[0]}
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) of the sample using linear
// interpolation between order statistics, or 0 for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// F1 combines precision and recall. Zero denominators yield 0.
func F1(precision, recall float64) float64 {
	if precision+recall == 0 {
		return 0
	}
	return 2 * precision * recall / (precision + recall)
}
