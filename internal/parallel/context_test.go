package parallel

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestDoContextNilCtxMatchesDo(t *testing.T) {
	out := make([]int, 100)
	if err := DoContext(nil, 4, len(out), func(i int) error {
		out[i] = i + 1
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("job %d ran %d times", i, v)
		}
	}
}

func TestDoContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		ran := false
		err := DoContext(ctx, workers, 50, func(int) error {
			ran = true
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got %v, want context.Canceled", workers, err)
		}
		if ran {
			t.Fatalf("workers=%d: jobs ran under a pre-cancelled context", workers)
		}
	}
}

// TestDoContextCancelMidPool cancels from inside an early job: the pool must
// stop claiming further jobs and report the context error, not the job
// progress, at every worker count.
func TestDoContextCancelMidPool(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		ctx, cancel := context.WithCancel(context.Background())
		var started atomic.Int64
		const jobs = 10_000
		err := DoContext(ctx, workers, jobs, func(i int) error {
			started.Add(1)
			if i == 5 {
				cancel()
			}
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got %v, want context.Canceled", workers, err)
		}
		// In-flight jobs (up to one per worker) may complete after the
		// cancel; the pool must not have drained the whole queue.
		if n := started.Load(); n >= jobs {
			t.Fatalf("workers=%d: all %d jobs ran despite cancellation", workers, n)
		}
	}
}

// TestDoContextCancelPrecedence: when a job fails AND the context is
// cancelled, the context error wins — callers distinguish "aborted" from
// "broken" by the returned error.
func TestDoContextCancelPrecedence(t *testing.T) {
	boom := errors.New("boom")
	ctx, cancel := context.WithCancel(context.Background())
	err := DoContext(ctx, 2, 100, func(i int) error {
		if i == 0 {
			cancel()
			return boom
		}
		return nil
	})
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled to take precedence over job error", err)
	}
}

// TestDoContextNoLeakedWorkers: a cancelled pool must wind down all its
// goroutines — nothing keeps claiming jobs in the background.
func TestDoContextNoLeakedWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	for round := 0; round < 5; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		_ = DoContext(ctx, 8, 1000, func(i int) error {
			if i == 2 {
				cancel()
			}
			return nil
		})
		cancel()
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

func TestForEachChunkContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var touched atomic.Int64
	err := ForEachChunkContext(ctx, 4, 100_000, 16, func(r Range) error {
		touched.Add(int64(r.Hi - r.Lo))
		if r.Index == 1 {
			cancel()
		}
		return nil
	})
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if n := touched.Load(); n >= 100_000 {
		t.Fatal("every chunk ran despite cancellation")
	}
}
