package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestChunksCoverDisjointly(t *testing.T) {
	cases := []struct{ n, size int }{
		{0, 4}, {1, 4}, {4, 4}, {5, 4}, {1000, 7}, {1000, 256}, {3, 0}, {3, -1},
	}
	for _, c := range cases {
		chunks := Chunks(c.n, c.size)
		seen := make([]bool, c.n)
		for idx, r := range chunks {
			if r.Index != idx {
				t.Errorf("Chunks(%d,%d)[%d].Index = %d", c.n, c.size, idx, r.Index)
			}
			if r.Lo >= r.Hi {
				t.Errorf("Chunks(%d,%d): empty range %+v", c.n, c.size, r)
			}
			for i := r.Lo; i < r.Hi; i++ {
				if seen[i] {
					t.Fatalf("Chunks(%d,%d): index %d covered twice", c.n, c.size, i)
				}
				seen[i] = true
			}
		}
		for i, ok := range seen {
			if !ok {
				t.Errorf("Chunks(%d,%d): index %d never covered", c.n, c.size, i)
			}
		}
	}
}

func TestChunksIndependentOfWorkers(t *testing.T) {
	// The chunk list is a pure function of (n, size): nothing about the
	// worker count can change boundaries or indices. This is the property
	// the deterministic E-step's RNG streams rest on.
	a := Chunks(1234, 97)
	b := Chunks(1234, 97)
	if len(a) != len(b) {
		t.Fatal("chunking not reproducible")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("chunk %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestDoRunsEveryJob(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 100} {
		const jobs = 250
		out := make([]int32, jobs)
		err := Do(workers, jobs, func(i int) error {
			atomic.AddInt32(&out[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, v)
			}
		}
	}
}

func TestDoDeterministicOutput(t *testing.T) {
	// Jobs write to disjoint slots; the assembled output must be identical
	// at any worker count even though scheduling differs.
	build := func(workers int) []float64 {
		out := make([]float64, 500)
		if err := Do(workers, len(out), func(i int) error {
			out[i] = float64(i*i) / 3
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := build(1)
	for _, w := range []int{2, 3, 16} {
		got := build(w)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d differs", w, i)
			}
		}
	}
}

func TestDoErrorPropagation(t *testing.T) {
	sentinel := errors.New("boom")
	other := errors.New("other")
	// The lowest-indexed failure wins regardless of scheduling.
	for _, workers := range []int{1, 4} {
		err := Do(workers, 64, func(i int) error {
			switch i {
			case 7:
				return sentinel
			case 40:
				return other
			}
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Errorf("workers=%d: got %v, want lowest-index error %v", workers, err, sentinel)
		}
	}
}

func TestDoFirstErrorDeterministicAcrossRuns(t *testing.T) {
	// The reported error must be the lowest failing index on every run, at
	// every worker count — even though the pool aborts early and scheduling
	// varies run to run.
	errAt := func(i int) error { return fmt.Errorf("job %d failed", i) }
	for _, workers := range []int{2, 8} {
		for run := 0; run < 25; run++ {
			var ran [256]atomic.Bool
			err := Do(workers, 256, func(i int) error {
				ran[i].Store(true)
				switch i {
				case 9, 60, 200:
					return errAt(i)
				}
				return nil
			})
			if err == nil || err.Error() != "job 9 failed" {
				t.Fatalf("workers=%d run=%d: got %v, want job 9's error", workers, run, err)
			}
			// Every job below the reported failure must have executed:
			// without that, "lowest failing index" would be a property of
			// scheduling, not of the job set.
			for i := 0; i < 9; i++ {
				if !ran[i].Load() {
					t.Fatalf("workers=%d run=%d: job %d below the failure never ran", workers, run, i)
				}
			}
		}
	}
}

func TestDoAbortsEarlyAfterFailure(t *testing.T) {
	// After one job fails, the pool must stop claiming new jobs rather than
	// grinding through the full index space.
	const jobs = 100000
	var executed atomic.Int64
	err := Do(4, jobs, func(i int) error {
		executed.Add(1)
		if i == 0 {
			return errors.New("fail fast")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if n := executed.Load(); n >= jobs {
		t.Errorf("executed all %d jobs despite an immediate failure", n)
	}
}

func TestDoPanicCapture(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := Do(workers, 16, func(i int) error {
			if i == 3 {
				panic("kaboom")
			}
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: got %v, want *PanicError", workers, err)
		}
		if pe.Value != "kaboom" {
			t.Errorf("panic value = %v", pe.Value)
		}
		if !strings.Contains(pe.Error(), "kaboom") || len(pe.Stack) == 0 {
			t.Error("panic error should carry the value and a stack trace")
		}
	}
}

func TestDoZeroJobs(t *testing.T) {
	if err := Do(4, 0, func(int) error { t.Error("must not run"); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := Do(4, -3, func(int) error { t.Error("must not run"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachChunk(t *testing.T) {
	const n = 1000
	out := make([]int, n)
	err := ForEachChunk(4, n, 64, func(r Range) error {
		for i := r.Lo; i < r.Hi; i++ {
			out[i] = r.Index + 1
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i/64+1 {
			t.Fatalf("index %d tagged with chunk %d, want %d", i, v-1, i/64)
		}
	}
}

func TestWorkersResolution(t *testing.T) {
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-1); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-1) = %d", got)
	}
}

// TestDoConcurrentStress exercises the pool under -race: many rounds of
// disjoint writes plus a shared atomic, looking for data races rather than
// asserting timing.
func TestDoConcurrentStress(t *testing.T) {
	var total atomic.Int64
	for round := 0; round < 20; round++ {
		out := make([]int64, 333)
		if err := Do(8, len(out), func(i int) error {
			out[i] = int64(i)
			total.Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := total.Load(); got != 20*333 {
		t.Fatalf("ran %d jobs, want %d", got, 20*333)
	}
}

func ExampleForEachChunk() {
	sums := make([]int, len(Chunks(10, 4)))
	_ = ForEachChunk(2, 10, 4, func(r Range) error {
		for i := r.Lo; i < r.Hi; i++ {
			sums[r.Index] += i
		}
		return nil
	})
	fmt.Println(sums)
	// Output: [6 22 17]
}
