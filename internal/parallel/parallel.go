// Package parallel is the work-sharding layer behind the fit pipeline's
// parallel loops: the E-step's sharded parent assignment, the per-dimension
// M-step fan-out, and the compensator/log-likelihood reductions.
//
// The design constraint throughout is *determinism at any parallelism
// level*: chunk boundaries are a pure function of the problem size (never of
// the worker count), every job writes only to its own disjoint output slots,
// and callers reduce partial results in job-index order. Randomized loops
// additionally key an independent RNG stream off each chunk's index (see
// rng.RNG.Split), so the same seed produces bit-identical results whether
// the pool runs one goroutine or sixteen.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"runtime/debug"
)

// Workers resolves a configured worker count: values <= 0 select
// runtime.GOMAXPROCS(0), anything positive is used as-is. Callers thread a
// user-facing knob (core.Config.Workers, the CLIs' -workers flag) through
// this so 0 means "use the machine".
func Workers(configured int) int {
	if configured > 0 {
		return configured
	}
	return runtime.GOMAXPROCS(0)
}

// Range is one half-open shard [Lo, Hi) of an index space, tagged with its
// position in the chunk list. Index is the stable per-chunk identity that
// randomized loops feed to rng.Split — it depends only on the data layout,
// so RNG streams survive any change in worker count.
type Range struct {
	Lo, Hi int
	Index  int
}

// Chunks splits [0, n) into consecutive ranges of at most size elements.
// Boundaries depend only on n and size — never on the worker count — which
// is what makes chunk-keyed RNG streams and per-chunk scratch reproducible
// at any parallelism level. size <= 0 yields a single chunk.
func Chunks(n, size int) []Range {
	if n <= 0 {
		return nil
	}
	if size <= 0 {
		size = n
	}
	out := make([]Range, 0, (n+size-1)/size)
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		out = append(out, Range{Lo: lo, Hi: hi, Index: len(out)})
	}
	return out
}

// PanicError wraps a panic recovered inside a worker so the pool can
// surface it as an ordinary error instead of tearing the process down from
// a bare goroutine.
type PanicError struct {
	Value any
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: worker panicked: %v\n%s", e.Value, e.Stack)
}

// Do runs fn(i) for every i in [0, jobs) across up to workers goroutines
// (resolved via Workers, capped at jobs) and returns the error of the
// lowest-indexed failing job — a deterministic choice, so error reporting
// does not depend on goroutine scheduling. The pool stops claiming new jobs
// once any job has failed, but the determinism survives the early abort:
// jobs are claimed in strictly increasing order, so every job below a
// failing one was already claimed and runs to completion before the pool
// returns, and with deterministic fn the lowest failing index is the same
// at any worker count. Panics inside fn are captured as *PanicError. Jobs
// are claimed from a shared counter, so callers must make fn(i) independent
// of execution order; with one worker the jobs simply run in order on the
// calling goroutine.
func Do(workers, jobs int, fn func(i int) error) error {
	return DoContext(nil, workers, jobs, fn)
}

// DoContext is Do with cooperative cancellation: ctx is polled before every
// job claim (on each worker goroutine and on the serial path), so a
// cancelled run stops within one job boundary — no new jobs start, in-flight
// jobs finish, and every worker goroutine exits before the call returns.
// Cancellation takes precedence over job errors: once ctx is done the
// return value is ctx.Err(), a deterministic choice regardless of which
// jobs also failed. A nil (or never-cancelled background) context makes
// DoContext behave exactly like Do at no measurable cost — the poll is one
// nil check.
func DoContext(ctx context.Context, workers, jobs int, fn func(i int) error) error {
	if jobs <= 0 {
		return nil
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done() // nil for Background/TODO: the poll short-circuits
	}
	canceled := func() bool {
		if done == nil {
			return false
		}
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
	workers = Workers(workers)
	if workers > jobs {
		workers = jobs
	}
	if workers == 1 {
		for i := 0; i < jobs; i++ {
			if canceled() {
				return ctx.Err()
			}
			if err := runJob(i, fn); err != nil {
				return err
			}
		}
		if canceled() {
			return ctx.Err()
		}
		return nil
	}
	errs := make([]error, jobs)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if canceled() || failed.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= jobs {
					return
				}
				if errs[i] = runJob(i, fn); errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	if canceled() {
		return ctx.Err()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runJob invokes fn(i) with panic capture.
func runJob(i int, fn func(int) error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	return fn(i)
}

// ForEachChunk shards [0, n) into fixed-size chunks (Chunks) and runs fn on
// each across the pool. The chunk list — and therefore each chunk's Index —
// is identical for every worker count.
func ForEachChunk(workers, n, size int, fn func(Range) error) error {
	return ForEachChunkContext(nil, workers, n, size, fn)
}

// ForEachChunkContext is ForEachChunk with cooperative cancellation: ctx is
// polled at every chunk boundary (see DoContext), so a cancelled sharded
// loop stops within one chunk's worth of work.
func ForEachChunkContext(ctx context.Context, workers, n, size int, fn func(Range) error) error {
	chunks := Chunks(n, size)
	return DoContext(ctx, workers, len(chunks), func(i int) error { return fn(chunks[i]) })
}
