package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must give same stream")
		}
	}
}

func TestSplitDecorrelates(t *testing.T) {
	r := New(7)
	c1, c2 := r.Split(1), r.Split(2)
	same := 0
	for i := 0; i < 64; i++ {
		if c1.Float64() == c2.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split streams collide %d/64 times", same)
	}
	// Splitting again with the same label reproduces the stream.
	d1 := New(7).Split(1)
	e1 := New(7).Split(1)
	for i := 0; i < 16; i++ {
		if d1.Float64() != e1.Float64() {
			t.Fatal("Split must be deterministic in (seed, label)")
		}
	}
}

func TestExpMean(t *testing.T) {
	r := New(1)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(2.0)
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Exp(2) mean = %g, want ~0.5", mean)
	}
}

func TestUniformRange(t *testing.T) {
	r := New(2)
	for i := 0; i < 1000; i++ {
		x := r.Uniform(-3, 5)
		if x < -3 || x >= 5 {
			t.Fatalf("Uniform(-3,5) = %g out of range", x)
		}
	}
}

func TestPoissonMoments(t *testing.T) {
	for _, mean := range []float64{0.5, 4, 30, 200} {
		r := New(3)
		const n = 50000
		var sum, sq float64
		for i := 0; i < n; i++ {
			x := float64(r.Poisson(mean))
			sum += x
			sq += x * x
		}
		m := sum / n
		v := sq/n - m*m
		if math.Abs(m-mean) > 0.05*mean+0.1 {
			t.Errorf("Poisson(%g) mean = %g", mean, m)
		}
		if math.Abs(v-mean) > 0.15*mean+0.3 {
			t.Errorf("Poisson(%g) variance = %g", mean, v)
		}
	}
	if New(1).Poisson(0) != 0 || New(1).Poisson(-1) != 0 {
		t.Error("Poisson of non-positive mean must be 0")
	}
}

func TestCategorical(t *testing.T) {
	r := New(4)
	w := []float64{0, 1, 3, 0, 6}
	counts := make([]int, len(w))
	const n = 100000
	for i := 0; i < n; i++ {
		k := r.Categorical(w)
		if k < 0 || k >= len(w) {
			t.Fatalf("Categorical out of range: %d", k)
		}
		counts[k]++
	}
	if counts[0] != 0 || counts[3] != 0 {
		t.Error("zero-weight categories must never be drawn")
	}
	p2 := float64(counts[2]) / n
	if math.Abs(p2-0.3) > 0.01 {
		t.Errorf("P(2) = %g, want ~0.3", p2)
	}
	if r.Categorical(nil) != -1 || r.Categorical([]float64{0, 0}) != -1 {
		t.Error("degenerate weights must return -1")
	}
}

func TestCategoricalNegativeWeightsIgnored(t *testing.T) {
	r := New(5)
	w := []float64{-5, 2, -1}
	for i := 0; i < 1000; i++ {
		if k := r.Categorical(w); k != 1 {
			t.Fatalf("only index 1 has positive weight, got %d", k)
		}
	}
}

func TestTruncNormal(t *testing.T) {
	r := New(6)
	for i := 0; i < 2000; i++ {
		x := r.TruncNormal(0, 1, -0.5, 0.5)
		if x < -0.5 || x > 0.5 {
			t.Fatalf("TruncNormal out of range: %g", x)
		}
	}
	// Pathological far-tail interval: must clamp, not loop forever.
	x := r.TruncNormal(0, 0.001, 50, 51)
	if x < 50 || x > 51 {
		t.Errorf("pathological TruncNormal = %g, want in [50,51]", x)
	}
}

func TestPickN(t *testing.T) {
	r := New(8)
	for trial := 0; trial < 200; trial++ {
		got := r.PickN(5, 20)
		if len(got) != 5 {
			t.Fatalf("PickN length = %d", len(got))
		}
		seen := map[int]bool{}
		for _, v := range got {
			if v < 0 || v >= 20 {
				t.Fatalf("PickN value out of range: %d", v)
			}
			if seen[v] {
				t.Fatalf("PickN duplicate: %v", got)
			}
			seen[v] = true
		}
	}
	if got := r.PickN(10, 3); len(got) != 3 {
		t.Errorf("PickN(n>=universe) should return a full permutation, got %v", got)
	}
}

func TestPickNUniform(t *testing.T) {
	r := New(9)
	counts := make([]int, 10)
	const trials = 30000
	for i := 0; i < trials; i++ {
		for _, v := range r.PickN(3, 10) {
			counts[v]++
		}
	}
	want := float64(trials) * 3 / 10
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Errorf("element %d drawn %d times, want ~%g", i, c, want)
		}
	}
}

// Property: Categorical never returns an index whose weight is zero.
func TestCategoricalSupportProperty(t *testing.T) {
	f := func(seed int64, raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		w := make([]float64, len(raw))
		anyPos := false
		for i, v := range raw {
			w[i] = math.Abs(v)
			if math.IsNaN(w[i]) || math.IsInf(w[i], 0) {
				w[i] = 0
			}
			if w[i] > 0 {
				anyPos = true
			}
		}
		k := New(seed).Categorical(w)
		if !anyPos {
			return k == -1
		}
		return k >= 0 && k < len(w) && w[k] > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
