// Package rng provides the deterministic random-number utilities used across
// the CHASSIS reproduction: a splittable source so independent subsystems
// (graph generation, cascade simulation, text rendering, inference
// initialization) draw from decorrelated streams of one master seed, plus
// the sampling distributions the simulators need.
package rng

import (
	"math"
	"math/rand"
)

// RNG wraps math/rand with the distributions used by the simulators. The
// zero value is not usable; construct with New.
type RNG struct {
	*rand.Rand
	seed int64
}

// New returns a deterministic RNG for the given seed.
func New(seed int64) *RNG {
	return &RNG{Rand: rand.New(rand.NewSource(seed)), seed: seed}
}

// Seed returns the seed the RNG was created with.
func (r *RNG) Seed() int64 { return r.seed }

// Split derives an independent child stream. The label decorrelates children
// split from the same parent: Split(1) and Split(2) never share a stream.
// Mixing uses splitmix64 so nearby seeds and labels diverge immediately.
func (r *RNG) Split(label int64) *RNG {
	return New(int64(splitmix64(uint64(r.seed)) ^ splitmix64(uint64(label)*0x9E3779B97F4A7C15+1)))
}

func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Exp draws from the exponential distribution with the given rate (mean
// 1/rate). Rates must be positive.
func (r *RNG) Exp(rate float64) float64 {
	return r.ExpFloat64() / rate
}

// Uniform draws uniformly from [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Poisson draws from the Poisson distribution with the given mean using
// Knuth's method for small means and a normal approximation (rounded,
// clamped at zero) for large ones.
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 60 {
		n := int(math.Round(mean + math.Sqrt(mean)*r.NormFloat64()))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Categorical samples an index proportionally to the non-negative weights.
// It returns -1 if all weights are zero (or the slice is empty).
func (r *RNG) Categorical(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return -1
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	// Floating-point slack: return the last positive-weight index.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	return -1
}

// Normal draws from N(mean, stddev²).
func (r *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.NormFloat64()
}

// TruncNormal draws from N(mean, stddev²) truncated to [lo, hi] by
// rejection, falling back to clamping after 64 attempts (which only happens
// for pathological intervals far in the tail).
func (r *RNG) TruncNormal(mean, stddev, lo, hi float64) float64 {
	for i := 0; i < 64; i++ {
		x := r.Normal(mean, stddev)
		if x >= lo && x <= hi {
			return x
		}
	}
	return math.Min(hi, math.Max(lo, mean))
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int { return r.Rand.Perm(n) }

// PickN samples n distinct integers from [0, universe) (all of them if
// n >= universe) in random order.
func (r *RNG) PickN(n, universe int) []int {
	if n >= universe {
		return r.Perm(universe)
	}
	// Partial Fisher-Yates over a lazily materialized array.
	swapped := make(map[int]int, n*2)
	get := func(i int) int {
		if v, ok := swapped[i]; ok {
			return v
		}
		return i
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		j := i + r.Intn(universe-i)
		out[i] = get(j)
		swapped[j] = get(i)
	}
	return out
}
