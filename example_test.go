package chassis_test

import (
	"fmt"

	"chassis"
)

// ExampleFit shows the paper's model-fitness protocol end to end: generate
// a corpus, train CHASSIS on the chronological prefix, and evaluate the
// held-out log-likelihood.
func ExampleFit() {
	ds, err := chassis.GenerateFacebookLike(0.3, 42)
	if err != nil {
		panic(err)
	}
	train, test, err := ds.Seq.Split(0.7)
	if err != nil {
		panic(err)
	}
	model, err := chassis.Fit(train, chassis.FitConfig{
		Variant:          chassis.VariantL,
		EMIters:          4,
		Seed:             1,
		UseObservedTrees: true,
	})
	if err != nil {
		panic(err)
	}
	ll, err := model.HeldOutLogLikelihood(test)
	if err != nil {
		panic(err)
	}
	fmt.Println("held-out LL is finite and negative:", ll < 0)
	// Output: held-out LL is finite and negative: true
}

// ExampleModel_InferForest shows Table 1's setting: connectivity hidden,
// diffusion trees inferred, scored against ground truth.
func ExampleModel_InferForest() {
	ds, err := chassis.GenerateFacebookLike(0.3, 7)
	if err != nil {
		panic(err)
	}
	model, err := chassis.Fit(ds.Seq, chassis.FitConfig{
		Variant: chassis.VariantL, EMIters: 4, Seed: 2, UseObservedTrees: true,
	})
	if err != nil {
		panic(err)
	}
	truth, err := chassis.GroundTruthForest(ds.Seq)
	if err != nil {
		panic(err)
	}
	inferred, err := model.InferForest(ds.Seq.StripParents())
	if err != nil {
		panic(err)
	}
	score, err := chassis.CompareForests(inferred, truth)
	if err != nil {
		panic(err)
	}
	fmt.Println("recovered more than half the parents:", score.F1 > 0.5)
	// Output: recovered more than half the parents: true
}

// ExampleAnalyzePolarity shows the stance analyzer (the NLTK stand-in).
func ExampleAnalyzePolarity() {
	fmt.Println(chassis.AnalyzePolarity("what a fantastic movie, loved it") > 0)
	fmt.Println(chassis.AnalyzePolarity("this story is a terrible hoax") < 0)
	// Output:
	// true
	// true
}
