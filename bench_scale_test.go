// Paper-scale memory study: stream a 590k-event corpus into a colstore
// file, then fit it twice — out-of-core (sharded E-step over the on-disk
// columns) and in-memory (materialized sequence) — with an identical
// configuration. The two models must be fingerprint-equal, and the sharded
// fit's peak RSS must sit below the in-memory fit's; both peaks, the
// write/scan throughput, and the materialized-sequence footprint land in
// BENCH_scale.json:
//
//	CHASSIS_BENCH_SCALE=1 go test -count=1 -run TestRecordScaleBench -v .
//
// The guarded quantity is the sharded/in-memory peak-RSS ratio — a
// machine-independent number (both peaks move together with the allocator
// and GOGC), unlike the throughput figures, which are recorded for context
// only. Fingerprint equality is re-asserted on every guard run: it is the
// end-to-end form of the bit-identity contract internal/core proves at unit
// scale.
package chassis_test

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"chassis/internal/benchgate"
	"chassis/internal/cascade"
	"chassis/internal/colstore"
	"chassis/internal/core"
	"chassis/internal/obs"
	"chassis/internal/timeline"
)

const scaleBenchPath = "BENCH_scale.json"

// scaleBenchReport is the schema of BENCH_scale.json.
type scaleBenchReport struct {
	GeneratedBy       string  `json:"generated_by"`
	GoVersion         string  `json:"go_version"`
	NumCPU            int     `json:"num_cpu"`
	Events            int     `json:"events"`
	Users             int     `json:"users"`
	CorpusBytes       int64   `json:"corpus_bytes"`
	SequenceBytes     int64   `json:"sequence_bytes"`
	WriteEventsPerSec float64 `json:"write_events_per_sec"`
	ScanEventsPerSec  float64 `json:"scan_events_per_sec"`
	EMIters           int     `json:"em_iters"`
	ShardEvents       int     `json:"shard_events"`
	ModelFingerprint  string  `json:"model_fingerprint"`
	ShardedPeakRSS    int64   `json:"sharded_peak_rss_bytes"`
	InMemPeakRSS      int64   `json:"inmem_peak_rss_bytes"`
	ShardedToInMemRSS float64 `json:"sharded_to_inmem_rss"`
	Note              string  `json:"note"`
}

// The corpus: the paper-scale preset's event count and temporal density,
// with users shrunk 50x (and per-user rates raised 50x to compensate) so
// the dense M x M excitation matrices of the L-HP fit stay tens of
// megabytes — the study isolates the cost of the corpus representation,
// which scales with events, from the cost of the parameters, which scales
// with users squared and is identical between the two drivers anyway.
const scaleBenchUsers = 2000

func scaleBenchConfig() cascade.Config {
	cfg := cascade.PaperScale(606)
	cfg.Name = "SF-scale-bench"
	ratio := float64(cfg.M) / float64(scaleBenchUsers)
	cfg.M = scaleBenchUsers
	cfg.BaseRateLo *= ratio
	cfg.BaseRateHi *= ratio
	return cfg
}

// scaleBenchFitConfig is the shared fit configuration. KernelSupport is
// pinned low: at ~390 events per time unit the E-step window grows linearly
// with support, and the memory story this bench tells does not depend on
// window width.
func scaleBenchFitConfig() core.Config {
	return core.Config{
		Variant: core.VariantLHP, EMIters: 2, Seed: 17,
		FixedKernel: true, KernelSupport: 2,
	}
}

const scaleBenchShardEvents = 65536

// measureScaleBench generates the corpus, times the colstore write and a
// full column scan, then runs the sharded fit BEFORE the in-memory one: the
// kernel's peak-RSS counter is a process-lifetime high-water mark, so the
// sharded peak must be read off before the in-memory fit (which holds
// strictly more) raises it.
func measureScaleBench(t *testing.T) scaleBenchReport {
	t.Helper()
	path := filepath.Join(t.TempDir(), "scale.colstore")
	cfg := scaleBenchConfig()
	w, err := colstore.Create(path, colstore.Meta{Name: cfg.Name, M: cfg.M, Horizon: cfg.Horizon})
	if err != nil {
		t.Fatal(err)
	}
	var writeNS int64
	stats, err := cascade.GenerateStream(cfg, 8192, func(batch []timeline.Activity) error {
		start := time.Now()
		err := w.Append(batch)
		writeNS += time.Since(start).Nanoseconds()
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	writeNS += time.Since(start).Nanoseconds()
	if !stats.Truncated {
		t.Fatalf("fixture drifted: realized %d events without hitting the %d cap — retune scaleBenchConfig rates", stats.Events, cfg.MaxEvents)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := colstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()

	scanStart := time.Now()
	var scanned int
	if err := rd.Scan(0, rd.NumEvents(), func(int, float64, int) { scanned++ }); err != nil {
		t.Fatal(err)
	}
	scanSec := time.Since(scanStart).Seconds()
	if scanned != stats.Events {
		t.Fatalf("scan visited %d of %d events", scanned, stats.Events)
	}

	shardedCfg := scaleBenchFitConfig()
	shardedCfg.ShardEvents = scaleBenchShardEvents
	sharded, err := core.FitSharded(context.Background(), rd, shardedCfg)
	if err != nil {
		t.Fatal(err)
	}
	shardedPeak, ok := obs.PeakRSSBytes()
	if !ok {
		t.Skip("peak RSS unavailable on this platform")
	}

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	seq, err := rd.Sequence()
	if err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	seqBytes := int64(after.HeapAlloc) - int64(before.HeapAlloc)

	inmem, err := core.Fit(seq, scaleBenchFitConfig())
	if err != nil {
		t.Fatal(err)
	}
	runtime.KeepAlive(seq)
	inmemPeak, _ := obs.PeakRSSBytes()

	if got, want := sharded.Fingerprint(), inmem.Fingerprint(); got != want {
		t.Fatalf("sharded fit diverged from in-memory: %s != %s", got, want)
	}
	rep := scaleBenchReport{
		GeneratedBy:       "CHASSIS_BENCH_SCALE=1 go test -count=1 -run TestRecordScaleBench -v .",
		GoVersion:         runtime.Version(),
		NumCPU:            runtime.NumCPU(),
		Events:            stats.Events,
		Users:             cfg.M,
		CorpusBytes:       info.Size(),
		SequenceBytes:     seqBytes,
		WriteEventsPerSec: float64(stats.Events) / (float64(writeNS) / 1e9),
		ScanEventsPerSec:  float64(stats.Events) / scanSec,
		EMIters:           scaleBenchFitConfig().EMIters,
		ShardEvents:       scaleBenchShardEvents,
		ModelFingerprint:  sharded.Fingerprint(),
		ShardedPeakRSS:    shardedPeak,
		InMemPeakRSS:      inmemPeak,
		ShardedToInMemRSS: float64(shardedPeak) / float64(inmemPeak),
		Note: "590k-event paper-density corpus (users shrunk 50x, rates raised 50x so the dense " +
			"M x M parameters stay small); sharded fit measured before the in-memory fit because " +
			"peak RSS is a process high-water mark; the guarded number is the peak-RSS ratio and " +
			"the model fingerprint, throughput figures are machine-specific context",
	}
	t.Logf("events %d, corpus %.1f MiB on disk, %.1f MiB materialized", rep.Events,
		float64(rep.CorpusBytes)/(1<<20), float64(rep.SequenceBytes)/(1<<20))
	t.Logf("write %.0f ev/s, scan %.0f ev/s", rep.WriteEventsPerSec, rep.ScanEventsPerSec)
	t.Logf("peak RSS: sharded %.1f MiB, in-memory %.1f MiB (ratio %.3f), model %s",
		float64(rep.ShardedPeakRSS)/(1<<20), float64(rep.InMemPeakRSS)/(1<<20),
		rep.ShardedToInMemRSS, rep.ModelFingerprint)
	return rep
}

func recordScaleBench(t *testing.T) scaleBenchReport {
	t.Helper()
	rep := measureScaleBench(t)
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(scaleBenchPath, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Log("wrote " + scaleBenchPath)
	return rep
}

// TestRecordScaleBench measures the paper-scale corpus study and rewrites
// BENCH_scale.json. Gated behind CHASSIS_BENCH_SCALE=1 so ordinary test
// runs never touch the checked-in numbers (the measurement takes minutes).
func TestRecordScaleBench(t *testing.T) {
	if os.Getenv("CHASSIS_BENCH_SCALE") == "" {
		t.Skip("set CHASSIS_BENCH_SCALE=1 to record " + scaleBenchPath)
	}
	recordScaleBench(t)
}

// TestScaleGuard holds the out-of-core fit to its contract at full corpus
// size: fingerprint-equal to the in-memory fit, peak RSS strictly below it,
// and the peak-RSS ratio within 15% of the checked-in baseline. The wide
// tolerance (vs the 2% wall-clock gates) reflects RSS granularity: the
// ratio moves with allocator page reuse, not scheduler noise, and a real
// regression — the sharded driver materializing the corpus — would roughly
// double it.
func TestScaleGuard(t *testing.T) {
	if os.Getenv("CHASSIS_BENCH_GUARD") == "" {
		t.Skip("set CHASSIS_BENCH_GUARD=1 to compare the scale study against " + scaleBenchPath)
	}
	var base scaleBenchReport
	ok, err := benchgate.LoadBaseline(scaleBenchPath, &base)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Logf("no %s baseline: recording one and passing", scaleBenchPath)
		recordScaleBench(t)
		return
	}
	rep := measureScaleBench(t)
	if rep.Events != base.Events || rep.Users != base.Users {
		t.Fatalf("fixture drifted: %d events / %d users, record has %d / %d — re-record the baseline",
			rep.Events, rep.Users, base.Events, base.Users)
	}
	if rep.ModelFingerprint != base.ModelFingerprint {
		t.Fatalf("model fingerprint drifted: %s, record has %s — the fit is no longer reproducing the recorded parameters, re-record only if the change is intentional",
			rep.ModelFingerprint, base.ModelFingerprint)
	}
	if rep.ShardedPeakRSS >= rep.InMemPeakRSS {
		t.Fatalf("sharded peak RSS %d is not below the in-memory fit's %d — the out-of-core driver is materializing the corpus",
			rep.ShardedPeakRSS, rep.InMemPeakRSS)
	}
	if err := benchgate.GateValue("sharded/in-memory peak RSS", "ratio",
		rep.ShardedToInMemRSS, base.ShardedToInMemRSS, 0.15); err != nil {
		t.Fatal(err)
	}
}
