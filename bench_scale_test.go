// Paper-scale memory study: stream a 590k-event corpus into a colstore
// file, then fit it four ways — out-of-core (sharded E-step over the on-disk
// columns) and in-memory (materialized sequence), each for the L-HP baseline
// and for the conformity-aware CHASSIS-L variant — with identical
// configurations. Each sharded model must be fingerprint-equal to its
// in-memory twin with a peak RSS below it; the peaks, the write/scan
// throughput, and the materialized-sequence footprint land in
// BENCH_scale.json:
//
//	CHASSIS_BENCH_SCALE=1 go test -count=1 -run TestRecordScaleBench -v .
//
// The guarded quantity is the sharded/in-memory peak-RSS ratio — a
// machine-independent number (both peaks move together with the allocator
// and GOGC), unlike the throughput figures, which are recorded for context
// only. Fingerprint equality is re-asserted on every guard run: it is the
// end-to-end form of the bit-identity contract internal/core proves at unit
// scale.
package chassis_test

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"chassis/internal/benchgate"
	"chassis/internal/cascade"
	"chassis/internal/colstore"
	"chassis/internal/core"
	"chassis/internal/obs"
	"chassis/internal/timeline"
)

const scaleBenchPath = "BENCH_scale.json"

// scaleBenchReport is the schema of BENCH_scale.json.
type scaleBenchReport struct {
	GeneratedBy       string  `json:"generated_by"`
	GoVersion         string  `json:"go_version"`
	NumCPU            int     `json:"num_cpu"`
	Events            int     `json:"events"`
	Users             int     `json:"users"`
	CorpusBytes       int64   `json:"corpus_bytes"`
	SequenceBytes     int64   `json:"sequence_bytes"`
	WriteEventsPerSec float64 `json:"write_events_per_sec"`
	ScanEventsPerSec  float64 `json:"scan_events_per_sec"`
	EMIters           int     `json:"em_iters"`
	ShardEvents       int     `json:"shard_events"`
	ModelFingerprint  string  `json:"model_fingerprint"`
	ShardedPeakRSS    int64   `json:"sharded_peak_rss_bytes"`
	InMemPeakRSS      int64   `json:"inmem_peak_rss_bytes"`
	ShardedToInMemRSS float64 `json:"sharded_to_inmem_rss"`
	// The conformity-aware (CHASSIS-L) leg of the study: same corpus, same
	// contract — sharded fingerprint-equal to in-memory with a lower peak.
	// The ratio is far closer to 1 than the baseline's because the retained
	// pair-history computer (identical in both drivers, bounded only by
	// Conformity.MaxActivePairs) dominates both peaks; the sharded win is
	// the corpus/E-step state it does NOT hold.
	ConfModelFingerprint  string  `json:"conf_model_fingerprint"`
	ConfShardedPeakRSS    int64   `json:"conf_sharded_peak_rss_bytes"`
	ConfInMemPeakRSS      int64   `json:"conf_inmem_peak_rss_bytes"`
	ConfShardedToInMemRSS float64 `json:"conf_sharded_to_inmem_rss"`
	Note                  string  `json:"note"`
}

// The corpus: the paper-scale preset's event count and temporal density,
// with users shrunk 50x (and per-user rates raised 50x to compensate) so
// the dense M x M excitation matrices of the L-HP fit stay tens of
// megabytes — the study isolates the cost of the corpus representation,
// which scales with events, from the cost of the parameters, which scales
// with users squared and is identical between the two drivers anyway.
const scaleBenchUsers = 2000

func scaleBenchConfig() cascade.Config {
	cfg := cascade.PaperScale(606)
	cfg.Name = "SF-scale-bench"
	ratio := float64(cfg.M) / float64(scaleBenchUsers)
	cfg.M = scaleBenchUsers
	cfg.BaseRateLo *= ratio
	cfg.BaseRateHi *= ratio
	return cfg
}

// scaleBenchFitConfig is the shared fit configuration. KernelSupport is
// pinned low: at ~390 events per time unit the E-step window grows linearly
// with support, and the memory story this bench tells does not depend on
// window width.
func scaleBenchFitConfig() core.Config {
	return core.Config{
		Variant: core.VariantLHP, EMIters: 2, Seed: 17,
		FixedKernel: true, KernelSupport: 2,
	}
}

// scaleBenchConfFitConfig is the conformity-aware (CHASSIS-L) leg: the same
// settings with the full conformity machinery — streamed per-refresh pair
// history in the sharded driver, resident sequence in the in-memory one.
func scaleBenchConfFitConfig() core.Config {
	cfg := scaleBenchFitConfig()
	cfg.Variant = core.VariantL
	return cfg
}

const scaleBenchShardEvents = 65536

// requirePeakAbove guards the measurement ordering: a peak-RSS reading only
// belongs to the fit that preceded it if that fit climbed above the
// process's previous high-water mark. Equality means the reading is a stale
// mark from an earlier phase and the ascending-order assumption broke.
func requirePeakAbove(t *testing.T, phase string, peak, prev int64) {
	t.Helper()
	if peak <= prev {
		t.Fatalf("%s peak RSS %d did not rise above the prior high-water mark %d — "+
			"the ascending measurement order no longer holds, reorder measureScaleBench",
			phase, peak, prev)
	}
}

// measureScaleBench generates the corpus, times the colstore write and a
// full column scan, then runs the sharded fit BEFORE the in-memory one: the
// kernel's peak-RSS counter is a process-lifetime high-water mark, so the
// sharded peak must be read off before the in-memory fit (which holds
// strictly more) raises it.
func measureScaleBench(t *testing.T) scaleBenchReport {
	t.Helper()
	path := filepath.Join(t.TempDir(), "scale.colstore")
	cfg := scaleBenchConfig()
	w, err := colstore.Create(path, colstore.Meta{Name: cfg.Name, M: cfg.M, Horizon: cfg.Horizon})
	if err != nil {
		t.Fatal(err)
	}
	var writeNS int64
	stats, err := cascade.GenerateStream(cfg, 8192, func(batch []timeline.Activity) error {
		start := time.Now()
		err := w.Append(batch)
		writeNS += time.Since(start).Nanoseconds()
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	writeNS += time.Since(start).Nanoseconds()
	if !stats.Truncated {
		t.Fatalf("fixture drifted: realized %d events without hitting the %d cap — retune scaleBenchConfig rates", stats.Events, cfg.MaxEvents)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := colstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()

	scanStart := time.Now()
	var scanned int
	if err := rd.Scan(0, rd.NumEvents(), func(int, float64, int) { scanned++ }); err != nil {
		t.Fatal(err)
	}
	scanSec := time.Since(scanStart).Seconds()
	if scanned != stats.Events {
		t.Fatalf("scan visited %d of %d events", scanned, stats.Events)
	}

	// The four fits run in ascending order of their true peaks — L-HP
	// sharded (~0.6 GiB), L-HP in-memory (~1.4 GiB), conformity sharded
	// (~9 GiB: the retained pair-history computer dominates), conformity
	// in-memory (~13 GiB) — because obs.PeakRSSBytes is a process-lifetime
	// high-water mark: a reading is that fit's own peak only if the fit
	// climbed above everything before it, which requirePeakAbove asserts.
	shardedCfg := scaleBenchFitConfig()
	shardedCfg.ShardEvents = scaleBenchShardEvents
	sharded, err := core.FitSharded(context.Background(), rd, shardedCfg)
	if err != nil {
		t.Fatal(err)
	}
	shardedPeak, ok := obs.PeakRSSBytes()
	if !ok {
		t.Skip("peak RSS unavailable on this platform")
	}

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	seq, err := rd.Sequence()
	if err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	seqBytes := int64(after.HeapAlloc) - int64(before.HeapAlloc)

	inmem, err := core.Fit(seq, scaleBenchFitConfig())
	if err != nil {
		t.Fatal(err)
	}
	inmemPeak, _ := obs.PeakRSSBytes()
	requirePeakAbove(t, "L-HP in-memory", inmemPeak, shardedPeak)

	confShardedCfg := scaleBenchConfFitConfig()
	confShardedCfg.ShardEvents = scaleBenchShardEvents
	confSharded, err := core.FitSharded(context.Background(), rd, confShardedCfg)
	if err != nil {
		t.Fatal(err)
	}
	confShardedPeak, _ := obs.PeakRSSBytes()
	requirePeakAbove(t, "conformity sharded", confShardedPeak, inmemPeak)

	confInmem, err := core.Fit(seq, scaleBenchConfFitConfig())
	if err != nil {
		t.Fatal(err)
	}
	runtime.KeepAlive(seq)
	confInmemPeak, _ := obs.PeakRSSBytes()
	requirePeakAbove(t, "conformity in-memory", confInmemPeak, confShardedPeak)

	if got, want := sharded.Fingerprint(), inmem.Fingerprint(); got != want {
		t.Fatalf("sharded fit diverged from in-memory: %s != %s", got, want)
	}
	if got, want := confSharded.Fingerprint(), confInmem.Fingerprint(); got != want {
		t.Fatalf("conformity sharded fit diverged from in-memory: %s != %s", got, want)
	}
	rep := scaleBenchReport{
		GeneratedBy:       "CHASSIS_BENCH_SCALE=1 go test -count=1 -run TestRecordScaleBench -v .",
		GoVersion:         runtime.Version(),
		NumCPU:            runtime.NumCPU(),
		Events:            stats.Events,
		Users:             cfg.M,
		CorpusBytes:       info.Size(),
		SequenceBytes:     seqBytes,
		WriteEventsPerSec: float64(stats.Events) / (float64(writeNS) / 1e9),
		ScanEventsPerSec:  float64(stats.Events) / scanSec,
		EMIters:           scaleBenchFitConfig().EMIters,
		ShardEvents:       scaleBenchShardEvents,
		ModelFingerprint:      sharded.Fingerprint(),
		ShardedPeakRSS:        shardedPeak,
		InMemPeakRSS:          inmemPeak,
		ShardedToInMemRSS:     float64(shardedPeak) / float64(inmemPeak),
		ConfModelFingerprint:  confSharded.Fingerprint(),
		ConfShardedPeakRSS:    confShardedPeak,
		ConfInMemPeakRSS:      confInmemPeak,
		ConfShardedToInMemRSS: float64(confShardedPeak) / float64(confInmemPeak),
		Note: "590k-event paper-density corpus (users shrunk 50x, rates raised 50x so the dense " +
			"M x M parameters stay small); the four fits run in ascending true-peak order " +
			"(L-HP sharded, L-HP in-memory, CHASSIS-L sharded, CHASSIS-L in-memory) so each " +
			"process-high-water-mark reading is that fit's own peak; the guarded numbers are the " +
			"peak-RSS ratios and the model fingerprints, throughput figures are machine-specific context",
	}
	t.Logf("events %d, corpus %.1f MiB on disk, %.1f MiB materialized", rep.Events,
		float64(rep.CorpusBytes)/(1<<20), float64(rep.SequenceBytes)/(1<<20))
	t.Logf("write %.0f ev/s, scan %.0f ev/s", rep.WriteEventsPerSec, rep.ScanEventsPerSec)
	t.Logf("peak RSS: sharded %.1f MiB, in-memory %.1f MiB (ratio %.3f), model %s",
		float64(rep.ShardedPeakRSS)/(1<<20), float64(rep.InMemPeakRSS)/(1<<20),
		rep.ShardedToInMemRSS, rep.ModelFingerprint)
	t.Logf("conformity peak RSS: sharded %.1f MiB, in-memory %.1f MiB (ratio %.3f), model %s",
		float64(rep.ConfShardedPeakRSS)/(1<<20), float64(rep.ConfInMemPeakRSS)/(1<<20),
		rep.ConfShardedToInMemRSS, rep.ConfModelFingerprint)
	return rep
}

func recordScaleBench(t *testing.T) scaleBenchReport {
	t.Helper()
	rep := measureScaleBench(t)
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(scaleBenchPath, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Log("wrote " + scaleBenchPath)
	return rep
}

// TestRecordScaleBench measures the paper-scale corpus study and rewrites
// BENCH_scale.json. Gated behind CHASSIS_BENCH_SCALE=1 so ordinary test
// runs never touch the checked-in numbers (the measurement takes minutes).
func TestRecordScaleBench(t *testing.T) {
	if os.Getenv("CHASSIS_BENCH_SCALE") == "" {
		t.Skip("set CHASSIS_BENCH_SCALE=1 to record " + scaleBenchPath)
	}
	recordScaleBench(t)
}

// TestScaleGuard holds the out-of-core fit to its contract at full corpus
// size: fingerprint-equal to the in-memory fit, peak RSS strictly below it,
// and the peak-RSS ratio within 15% of the checked-in baseline. The wide
// tolerance (vs the 2% wall-clock gates) reflects RSS granularity: the
// ratio moves with allocator page reuse, not scheduler noise, and a real
// regression — the sharded driver materializing the corpus — would roughly
// double it.
func TestScaleGuard(t *testing.T) {
	if os.Getenv("CHASSIS_BENCH_GUARD") == "" {
		t.Skip("set CHASSIS_BENCH_GUARD=1 to compare the scale study against " + scaleBenchPath)
	}
	var base scaleBenchReport
	ok, err := benchgate.LoadBaseline(scaleBenchPath, &base)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Logf("no %s baseline: recording one and passing", scaleBenchPath)
		recordScaleBench(t)
		return
	}
	rep := measureScaleBench(t)
	if rep.Events != base.Events || rep.Users != base.Users {
		t.Fatalf("fixture drifted: %d events / %d users, record has %d / %d — re-record the baseline",
			rep.Events, rep.Users, base.Events, base.Users)
	}
	if rep.ModelFingerprint != base.ModelFingerprint {
		t.Fatalf("model fingerprint drifted: %s, record has %s — the fit is no longer reproducing the recorded parameters, re-record only if the change is intentional",
			rep.ModelFingerprint, base.ModelFingerprint)
	}
	if rep.ConfModelFingerprint != base.ConfModelFingerprint {
		t.Fatalf("conformity model fingerprint drifted: %s, record has %s — re-record only if the change is intentional",
			rep.ConfModelFingerprint, base.ConfModelFingerprint)
	}
	if rep.ShardedPeakRSS >= rep.InMemPeakRSS {
		t.Fatalf("sharded peak RSS %d is not below the in-memory fit's %d — the out-of-core driver is materializing the corpus",
			rep.ShardedPeakRSS, rep.InMemPeakRSS)
	}
	if rep.ConfShardedPeakRSS >= rep.ConfInMemPeakRSS {
		t.Fatalf("conformity sharded peak RSS %d is not below the conformity in-memory fit's %d — the streamed conformity rebuild is holding corpus-sized state",
			rep.ConfShardedPeakRSS, rep.ConfInMemPeakRSS)
	}
	if err := benchgate.GateValue("sharded/in-memory peak RSS", "ratio",
		rep.ShardedToInMemRSS, base.ShardedToInMemRSS, 0.15); err != nil {
		t.Fatal(err)
	}
	if err := benchgate.GateValue("conformity sharded/in-memory peak RSS", "ratio",
		rep.ConfShardedToInMemRSS, base.ConfShardedToInMemRSS, 0.15); err != nil {
		t.Fatal(err)
	}
}
