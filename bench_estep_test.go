// E-step parallelism study: wall-clock of the sharded parent-assignment
// pass (the EM hot loop) at increasing worker counts, through the public
// API. BenchmarkEStepParallel is the interactive view; TestRecordEStepBench
// writes the checked-in BENCH_estep.json snapshot when asked:
//
//	CHASSIS_BENCH_ESTEP=1 go test -run TestRecordEStepBench -v .
//
// Worker counts change only the wall-clock — the determinism suite in
// internal/core proves the outputs bit-identical — so the recorder also
// cross-checks the inferred forests while it times them.
package chassis_test

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"chassis"
	"chassis/internal/timeline"
)

// estepFixture fits a model on the SF-analogue corpus and returns it with
// a stripped inference target (scale 1 ≈ the largest single-machine
// setting the unit suite uses).
func estepFixture(tb testing.TB) (*chassis.Model, *chassis.Sequence) {
	tb.Helper()
	ds, err := chassis.GenerateFacebookLike(1, 7)
	if err != nil {
		tb.Fatal(err)
	}
	train, _, err := ds.Seq.Split(0.7)
	if err != nil {
		tb.Fatal(err)
	}
	m, err := chassis.Fit(train, chassis.FitConfig{
		Variant: chassis.VariantL, EMIters: 4, Seed: 7, UseObservedTrees: true,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return m, ds.Seq.StripParents()
}

// BenchmarkEStepParallel: full forest inference (bootstrap + two E-step
// passes + conformity rebuilds) per worker count.
func BenchmarkEStepParallel(b *testing.B) {
	if testing.Short() {
		b.Skip("experiment benchmark")
	}
	m, work := estepFixture(b)
	b.Logf("events: %d, NumCPU: %d", work.Len(), runtime.NumCPU())
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			m.SetWorkers(w)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.InferForest(work); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchResult is one row of BENCH_estep.json.
type benchResult struct {
	Workers  int     `json:"workers"`
	MedianMS float64 `json:"median_ms"`
	Speedup  float64 `json:"speedup_vs_1"`
}

type benchReport struct {
	GeneratedBy string        `json:"generated_by"`
	GoVersion   string        `json:"go_version"`
	NumCPU      int           `json:"num_cpu"`
	GOMAXPROCS  int           `json:"gomaxprocs"`
	Events      int           `json:"events"`
	Reps        int           `json:"reps"`
	Results     []benchResult `json:"results"`
	Note        string        `json:"note"`
}

// TestRecordEStepBench measures forest-inference wall-clock at worker
// counts 1..NumCPU-and-beyond and rewrites BENCH_estep.json. Gated behind
// CHASSIS_BENCH_ESTEP=1 so ordinary test runs never touch the checked-in
// numbers or depend on machine speed.
func TestRecordEStepBench(t *testing.T) {
	if os.Getenv("CHASSIS_BENCH_ESTEP") == "" {
		t.Skip("set CHASSIS_BENCH_ESTEP=1 to record BENCH_estep.json")
	}
	m, work := estepFixture(t)
	workerSet := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		workerSet = append(workerSet, n)
	}
	const reps = 5
	var baseline []timeline.ActivityID
	var medians []float64
	report := benchReport{
		GeneratedBy: "CHASSIS_BENCH_ESTEP=1 go test -run TestRecordEStepBench -v .",
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Events:      work.Len(),
		Reps:        reps,
	}
	for _, w := range workerSet {
		m.SetWorkers(w)
		if _, err := m.InferForest(work); err != nil { // warm-up
			t.Fatal(err)
		}
		times := make([]float64, 0, reps)
		var parents []timeline.ActivityID
		for r := 0; r < reps; r++ {
			start := time.Now()
			f, err := m.InferForest(work)
			if err != nil {
				t.Fatal(err)
			}
			times = append(times, float64(time.Since(start).Microseconds())/1000)
			parents = f.Parents()
		}
		// The timing study doubles as a determinism spot-check.
		if baseline == nil {
			baseline = parents
		} else {
			for k := range baseline {
				if baseline[k] != parents[k] {
					t.Fatalf("workers=%d: parent[%d] diverged from workers=%d run", w, k, workerSet[0])
				}
			}
		}
		sort.Float64s(times)
		med := times[len(times)/2]
		medians = append(medians, med)
		report.Results = append(report.Results, benchResult{
			Workers: w, MedianMS: med, Speedup: medians[0] / med,
		})
		t.Logf("workers=%d: median %.2f ms (speedup %.2fx)", w, med, medians[0]/med)
	}
	if runtime.NumCPU() < 4 {
		report.Note = fmt.Sprintf("recorded on a %d-CPU machine: worker counts above NumCPU cannot speed up and speedups near 1.0x are expected; the determinism cross-check (identical forests at every worker count) is the machine-independent part of this record", runtime.NumCPU())
	} else {
		report.Note = "median of reps; forests cross-checked identical at every worker count"
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_estep.json", append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Log("wrote BENCH_estep.json")
}
