// WAL recovery study: populate a write-ahead log with a deterministic
// ingest stream through a live server, then measure how fast a fresh
// process replays it back into serving state. The replay wall time and
// derived throughput land in BENCH_wal.json:
//
//	CHASSIS_BENCH_WAL=1 go test -run TestRecordWALBench -v .
//
// Replay is the crash-recovery critical path — it bounds how long a
// restarted chassis-serve answers /readyz with "replaying" — so it gets
// the same 2% regression gate as the other wall-clock guards. The
// correctness side (bit-identical post-recovery responses) is proven
// separately by the e2e suite in internal/serve.
package chassis_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"chassis/internal/benchgate"
	"chassis/internal/obs"
	"chassis/internal/serve"
	"chassis/internal/wal"
)

const walBenchPath = "BENCH_wal.json"

// walBenchReport is the schema of BENCH_wal.json.
type walBenchReport struct {
	GeneratedBy   string  `json:"generated_by"`
	GoVersion     string  `json:"go_version"`
	NumCPU        int     `json:"num_cpu"`
	Records       int     `json:"records"`
	Events        int     `json:"events"`
	Cascades      int     `json:"cascades"`
	ReplayMS      float64 `json:"replay_ms"`
	RecordsPerSec float64 `json:"records_per_sec"`
	EventsPerSec  float64 `json:"events_per_sec"`
	Note          string  `json:"note"`
}

// The populated log: walBenchCascades live cascades, each receiving
// walBenchAppends batches of walBenchBatch events — one WAL record per
// batch. Replay therefore re-attributes every event's parent against a
// growing tail, which is exactly the work a crashed server redoes on boot.
// Sized so replay takes O(100ms): long enough that run-to-run scheduler
// noise sits well inside the 2% gate, short enough to keep the guard cheap.
const (
	walBenchCascades = 32
	walBenchAppends  = 24
	walBenchBatch    = 16
)

// walBenchPopulate drives the deterministic ingest stream through a
// WAL-backed server (sync=off: population speed is irrelevant to the
// replay being measured) and returns the record/event totals in the log.
func walBenchPopulate(t *testing.T, src serve.Source, dir string) (records, events int) {
	t.Helper()
	s, err := serve.New(serve.Config{
		Source: src,
		WAL:    wal.Config{Dir: dir, Sync: wal.SyncOff},
		Batch:  serve.BatchConfig{MaxBatch: 1, QueueDepth: 1024},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Recover(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() {
		if err := s.CloseWAL(); err != nil {
			t.Fatal(err)
		}
	}()
	for a := 0; a < walBenchAppends; a++ {
		for c := 0; c < walBenchCascades; c++ {
			var evs []string
			for e := 0; e < walBenchBatch; e++ {
				// Chronological per cascade, users spread over the fixture's
				// M=60, deterministic — same bytes in the log every run.
				seq := a*walBenchBatch + e
				evs = append(evs, fmt.Sprintf(`{"user":%d,"time":%d}`,
					(c*7+seq*3)%60, 1+seq*2+c%2))
			}
			body := fmt.Sprintf(`{"cascade_id":"w%02d","events":[%s]}`,
				c, strings.Join(evs, ","))
			resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("populate ingest: status %d", resp.StatusCode)
			}
			resp.Body.Close()
			records++
			events += walBenchBatch
		}
	}
	return records, events
}

// walBenchReplay boots a fresh server over the populated log and times
// Recover — snapshot load (none here), tail replay through the ingest
// store, and WAL restart — returning milliseconds and the replayed record
// count the engine itself observed.
func walBenchReplay(t *testing.T, src serve.Source, dir string) (ms float64, replayed int64) {
	t.Helper()
	metrics := obs.NewMetrics()
	s, err := serve.New(serve.Config{
		Source:  src,
		WAL:     wal.Config{Dir: dir, Sync: wal.SyncOff},
		Metrics: metrics,
		Batch:   serve.BatchConfig{MaxBatch: 1, QueueDepth: 1024},
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := s.Recover(context.Background()); err != nil {
		t.Fatal(err)
	}
	ms = float64(time.Since(start).Nanoseconds()) / 1e6
	if err := s.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	return ms, metrics.Counter("wal.replayed_records").Value()
}

// walBenchReplayReps runs reps independent recoveries over the same log
// and returns every timing. Each rep is a cold server; the log is
// read-only across reps (no ingest happens), so timings are iid.
func walBenchReplayReps(t *testing.T, src serve.Source, dir string, reps, wantRecords int) []float64 {
	t.Helper()
	var times []float64
	for r := 0; r < reps; r++ {
		ms, replayed := walBenchReplay(t, src, dir)
		if replayed != int64(wantRecords) {
			t.Fatalf("rep %d replayed %d records, want %d", r, replayed, wantRecords)
		}
		times = append(times, ms)
	}
	return times
}

func medianMS(times []float64) float64 {
	sorted := append([]float64(nil), times...)
	sort.Float64s(sorted)
	return sorted[len(sorted)/2]
}

func bestMSOf(times []float64) float64 {
	best := times[0]
	for _, v := range times[1:] {
		if v < best {
			best = v
		}
	}
	return best
}

// recordWALBench populates a log, measures replay, and writes the
// snapshot; shared by the recorder test and the guard's record-and-pass
// path. Baseline from the MEDIAN rep, same reasoning as the serve bench:
// the guard later holds a fresh BEST rep against it, so scheduler jitter
// lands inside the 2% margin instead of flaking CI.
func recordWALBench(t *testing.T) walBenchReport {
	t.Helper()
	_, src := serveBenchFixture(t)
	dir := filepath.Join(t.TempDir(), "wal")
	records, events := walBenchPopulate(t, src, dir)
	med := medianMS(walBenchReplayReps(t, src, dir, 5, records))
	t.Logf("replay: %d records / %d events in %.3f ms (%.0f events/sec)",
		records, events, med, float64(events)/(med/1e3))

	report := walBenchReport{
		GeneratedBy:   "CHASSIS_BENCH_WAL=1 go test -run TestRecordWALBench -v .",
		GoVersion:     runtime.Version(),
		NumCPU:        runtime.NumCPU(),
		Records:       records,
		Events:        events,
		Cascades:      walBenchCascades,
		ReplayMS:      med,
		RecordsPerSec: float64(records) / (med / 1e3),
		EventsPerSec:  float64(events) / (med / 1e3),
		Note: "median-of-reps cold recovery over a deterministic ingest log (no snapshot, " +
			"full tail replay with per-event parent re-attribution against the M=60 fixture " +
			"model); replay_ms bounds the /readyz 'replaying' window after a crash, " +
			"absolute numbers are machine-specific",
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walBenchPath, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Log("wrote " + walBenchPath)
	return report
}

// TestRecordWALBench measures crash-recovery replay and rewrites
// BENCH_wal.json. Gated behind CHASSIS_BENCH_WAL=1 so ordinary test runs
// never touch the checked-in numbers.
func TestRecordWALBench(t *testing.T) {
	if os.Getenv("CHASSIS_BENCH_WAL") == "" {
		t.Skip("set CHASSIS_BENCH_WAL=1 to record " + walBenchPath)
	}
	recordWALBench(t)
}

// TestWALReplayGuard holds WAL replay time to the checked-in baseline
// within the repo's standard 2% gate. A missing baseline records one and
// passes (record-and-pass). Gated behind CHASSIS_BENCH_GUARD=1 with the
// other wall-clock guards.
func TestWALReplayGuard(t *testing.T) {
	if os.Getenv("CHASSIS_BENCH_GUARD") == "" {
		t.Skip("set CHASSIS_BENCH_GUARD=1 to compare WAL replay against " + walBenchPath)
	}
	var report walBenchReport
	ok, err := benchgate.LoadBaseline(walBenchPath, &report)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Logf("no %s baseline: recording one and passing", walBenchPath)
		recordWALBench(t)
		return
	}

	_, src := serveBenchFixture(t)
	dir := filepath.Join(t.TempDir(), "wal")
	records, events := walBenchPopulate(t, src, dir)
	if records != report.Records || events != report.Events {
		t.Fatalf("fixture drifted: %d records / %d events, record has %d / %d — re-record the baseline",
			records, events, report.Records, report.Events)
	}
	best := bestMSOf(walBenchReplayReps(t, src, dir, 7, records))
	t.Logf("replay best %.3f ms over 7 reps (baseline %.3f ms)", best, report.ReplayMS)
	if err := benchgate.Gate("wal replay", best, report.ReplayMS, 0.02); err != nil {
		t.Fatal(err)
	}
}
